package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"coma/internal/config"
	"coma/internal/obs/receipt"
)

// This file is the cluster coordinator: the scheduler comad runs with
// Options.Cluster set. Instead of executing jobs on the in-process
// runner pool, the coordinator owns a dispatch queue that registered
// worker nodes (cmd/comanode, internal/cluster) drain over HTTP/JSON:
//
//	POST   /v1/workers                 register  -> worker id + lease terms
//	GET    /v1/workers                 fleet listing
//	POST   /v1/workers/{id}/heartbeat  liveness + lease renewal + revocations
//	POST   /v1/workers/{id}/lease      claim up to n jobs (long-poll)
//	POST   /v1/workers/{id}/complete   deliver one job's result payload
//	POST   /v1/workers/{id}/progress   forward progress events for SSE
//	DELETE /v1/workers/{id}            graceful leave; leases requeue
//
// Fault tolerance eats the paper's dogfood: a lease is job id +
// deadline, renewed by heartbeats; a worker that misses its liveness
// window is declared dead and every lease it held expires back onto the
// queue (requeue counter per job, dead-letter past Options.MaxRequeues).
// Re-execution is always safe because jobs are content-addressed by
// config.RunIdentity: any worker computes byte-identical payloads for a
// given identity, so the first completion wins and stale completions
// from zombie workers are accepted or discarded without harm.
//
// Work stealing: an idle worker whose lease request finds the queue
// empty takes unstarted leases from the backlog of the most loaded
// worker; the victim learns about it through the revocation list on its
// next heartbeat or lease response. Because execution is idempotent,
// the revocation race (victim starts a job just as it is stolen) is
// benign — whichever result arrives first completes the job.
//
// There is no sweeper goroutine: expiry is evaluated lazily, inside
// every worker-facing handler and the metrics scrape, against the wall
// clock at that moment. A fleet that is polling for work therefore
// detects dead peers within one poll interval, and a coordinator with
// no live workers has nobody to run requeued work for anyway.

// Cluster-mode defaults; overridable through Options.
const (
	DefaultLeaseTTL       = 15 * time.Second
	DefaultHeartbeatEvery = 5 * time.Second
	DefaultMaxRequeues    = 3
)

// RegisterRequest is the wire format of POST /v1/workers.
type RegisterRequest struct {
	// Name labels the worker in listings and logs (not necessarily
	// unique; the coordinator assigns the id).
	Name string `json:"name"`
	// Slots is how many simulations the worker runs concurrently; the
	// scheduler uses it to size lease batches.
	Slots int `json:"slots"`
	// Revision is the worker's code revision. A coordinator refuses
	// workers built from different code: results are cached under the
	// coordinator's revision, so a mismatched worker would poison the
	// content-addressed store.
	Revision string `json:"revision,omitempty"`
}

// RegisterResponse answers a successful registration with the assigned
// identity and the lease terms the worker must live by.
type RegisterResponse struct {
	WorkerID string `json:"worker_id"`
	// LeaseTTLMS is the liveness window: a worker silent for this long
	// is dead and its leases requeue.
	LeaseTTLMS int64 `json:"lease_ttl_ms"`
	// HeartbeatMS is the coordinator's suggested heartbeat period
	// (a fraction of the lease TTL).
	HeartbeatMS int64 `json:"heartbeat_ms"`
}

// LeaseRequest is the wire format of POST /v1/workers/{id}/lease.
type LeaseRequest struct {
	// Max bounds the jobs returned (0: 1).
	Max int `json:"max"`
	// WaitMS long-polls: the coordinator holds the request up to this
	// long for work to arrive before answering empty.
	WaitMS int64 `json:"wait_ms,omitempty"`
}

// LeasedJob is one unit of work handed to a worker: the canonical run
// identity (exactly the bytes-defining cache key the coordinator
// stores results under) plus lease metadata.
type LeasedJob struct {
	JobID    string             `json:"job_id"`
	Identity config.RunIdentity `json:"identity"`
	// Progress asks the worker to forward lifecycle progress events for
	// the job's SSE stream.
	Progress bool `json:"progress,omitempty"`
	// Attempt counts prior lease expiries of this job.
	Attempt int `json:"attempt,omitempty"`
}

// LeaseResponse carries newly leased jobs plus any pending revocations
// (jobs stolen from this worker since it last asked).
type LeaseResponse struct {
	Jobs    []LeasedJob `json:"jobs,omitempty"`
	Revoked []string    `json:"revoked,omitempty"`
	// Draining tells the worker the coordinator is shutting down: finish
	// what you hold, expect no further work.
	Draining bool `json:"draining,omitempty"`
}

// HeartbeatRequest reports liveness and which leased jobs have actually
// started executing (the unstarted remainder is the worker's stealable
// backlog).
type HeartbeatRequest struct {
	Running []string `json:"running,omitempty"`
}

// HeartbeatResponse acknowledges a heartbeat.
type HeartbeatResponse struct {
	Revoked  []string `json:"revoked,omitempty"`
	Draining bool     `json:"draining,omitempty"`
}

// CompleteRequest delivers one leased job's outcome: the canonical
// result payload bytes on success, or the simulation's error. A
// simulation error is deterministic (same identity, same error), so the
// job fails instead of requeueing.
type CompleteRequest struct {
	JobID  string          `json:"job_id"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	// Receipt is the worker's execution receipt for the run (canonical
	// coma-receipt/v1 bytes). The coordinator recomputes the result
	// digest against it before accepting the payload; when the
	// coordinator holds a receipt key, the receipt must verify under it.
	Receipt json.RawMessage `json:"receipt,omitempty"`
}

// ProgressEvent is one forwarded progress line for SSE re-broadcast.
type ProgressEvent struct {
	Message   string `json:"message"`
	SimCycles int64  `json:"sim_cycles,omitempty"`
}

// ProgressRequest batches progress events for one job.
type ProgressRequest struct {
	JobID  string          `json:"job_id"`
	Events []ProgressEvent `json:"events"`
}

// WorkerStatus is one row of GET /v1/workers.
type WorkerStatus struct {
	ID    string `json:"id"`
	Name  string `json:"name"`
	State string `json:"state"` // "active" or "dead"
	Slots int    `json:"slots"`
	// Leases is every job currently leased to the worker; Running is the
	// subset it has reported started (the difference is its stealable
	// backlog).
	Leases      int     `json:"leases"`
	Running     int     `json:"running"`
	Completed   int64   `json:"completed"`
	SinceBeatMS float64 `json:"since_beat_ms"`
}

// Worker lifecycle states (WorkerStatus.State and the
// coma_cluster_workers gauge label).
const (
	workerActive = "active"
	workerDead   = "dead"
)

// worker is the coordinator's view of one registered node. Guarded by
// the server mutex, like all scheduler state.
type worker struct {
	id    string
	name  string
	slots int
	state string

	lastBeat time.Time
	// leases maps job id -> lease deadline (renewed on every heartbeat
	// and lease call).
	leases map[string]time.Time
	// running is the subset of leases the worker reported started; the
	// complement is its stealable backlog.
	running map[string]bool
	// revoked accumulates stolen job ids until the worker's next
	// heartbeat or lease response delivers them.
	revoked   []string
	completed int64
}

// unstarted counts leased-but-not-started jobs (the stealable backlog).
func (w *worker) unstarted() int {
	n := 0
	for id := range w.leases {
		if !w.running[id] {
			n++
		}
	}
	return n
}

// clusterTable is the coordinator's scheduler state, embedded in Server
// and guarded by its mutex.
type clusterTable struct {
	leaseTTL       time.Duration
	heartbeatEvery time.Duration
	maxRequeues    int

	nextWorker int
	workers    map[string]*worker
	// pending is the dispatch queue: job ids awaiting a lease, FIFO,
	// with requeued jobs pushed to the front so retried work finishes
	// first. Entries whose job left the queued state are skipped lazily.
	pending []string
	// wake is closed and replaced whenever pending grows, releasing
	// long-polling lease handlers.
	wake chan struct{}

	// Counters exported on /metrics.
	leaseExpiries int64
	requeues      int64
	steals        int64
	// digestMismatches counts completions rejected because the payload
	// failed round-trip validation or its receipt's digest/signature.
	digestMismatches int64
}

func newClusterTable(opts Options) *clusterTable {
	return &clusterTable{
		leaseTTL:       opts.LeaseTTL,
		heartbeatEvery: opts.HeartbeatEvery,
		maxRequeues:    opts.MaxRequeues,
		workers:        make(map[string]*worker),
		wake:           make(chan struct{}),
	}
}

// wakeLocked releases every long-polling lease handler. Caller holds
// the server mutex.
func (c *clusterTable) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// enqueueLocked adds a job to the dispatch queue (front for requeues,
// back for new admissions) and wakes lease pollers.
func (s *Server) enqueueLocked(j *job, front bool) {
	if front {
		s.clu.pending = append([]string{j.id}, s.clu.pending...)
	} else {
		s.clu.pending = append(s.clu.pending, j.id)
	}
	s.clu.wakeLocked()
}

// sweepLocked evaluates liveness at now: workers silent for a full
// lease TTL are declared dead and every lease they hold expires back
// onto the queue. Called from every worker-facing handler and the
// metrics scrape; caller holds the server mutex.
func (s *Server) sweepLocked(now time.Time) {
	for _, w := range s.clu.workers {
		if w.state != workerActive {
			continue
		}
		if now.Sub(w.lastBeat) <= s.clu.leaseTTL {
			continue
		}
		w.state = workerDead
		s.logf("cluster: worker %s (%s) lost: no heartbeat for %v, %d lease(s) expire",
			w.id, w.name, now.Sub(w.lastBeat).Round(time.Millisecond), len(w.leases))
		for id := range w.leases {
			delete(w.leases, id)
			delete(w.running, id)
			s.clu.leaseExpiries++
			if j, ok := s.jobs[id]; ok && !j.state.Terminal() {
				s.requeueLocked(j, fmt.Sprintf("lease expired on worker %s", w.id), true)
			}
		}
	}
}

// requeueLocked moves a running cluster job back to the dispatch queue
// (or dead-letters it once it has burned its retries). countAttempt is
// false for voluntary returns (worker deregistration), which should not
// push a job toward the dead letter state. Caller holds the server
// mutex; the job must be non-terminal.
func (s *Server) requeueLocked(j *job, why string, countAttempt bool) {
	s.clu.requeues++
	if countAttempt {
		j.attempts++
	}
	j.workerID = ""
	if j.state == StateRunning {
		s.running--
	}
	if countAttempt && j.attempts > s.clu.maxRequeues {
		j.errMsg = fmt.Sprintf("dead-lettered after %d lease expiries (max %d requeues): %s",
			j.attempts, s.clu.maxRequeues, why)
		s.finishLocked(j, StateDeadLetter)
		s.logf("job %s: dead-lettered (%s)", shortID(j.id), why)
		return
	}
	j.state = StateQueued
	j.dequeued = false
	j.startedAt = time.Time{}
	s.queued++
	s.appendEventLocked(j, JobEvent{Type: "state", State: StateQueued})
	s.appendEventLocked(j, JobEvent{Type: "progress",
		Message: fmt.Sprintf("requeued (attempt %d): %s", j.attempts, why)})
	s.enqueueLocked(j, true)
	s.logf("job %s: requeued (attempt %d): %s", shortID(j.id), j.attempts, why)
}

// assignLocked hands up to max queued jobs to w, stealing from the most
// backlogged peer when the queue runs dry. Caller holds the server
// mutex.
func (s *Server) assignLocked(w *worker, max int, now time.Time) []LeasedJob {
	var out []LeasedJob
	for len(out) < max {
		j := s.popPendingLocked()
		if j == nil {
			break
		}
		if !j.deadline.IsZero() && now.After(j.deadline) {
			// Deadline burned while queued: fail it here rather than
			// waste a worker slot on it.
			s.queued--
			j.dequeued = true
			j.errMsg = "deadline exceeded while queued"
			s.finishLocked(j, StateFailed)
			continue
		}
		out = append(out, s.leaseToLocked(w, j, now, false))
	}
	// Queue empty and capacity left: steal unstarted leases from the
	// slowest (most backlogged) worker, one at a time, as long as the
	// victim still holds a deeper unstarted backlog than the requester
	// (freshly assigned jobs above already count against w: the lease
	// moved to it).
	for len(out) < max {
		victim := s.stealVictimLocked(w)
		if victim == nil || victim.unstarted() <= w.unstarted()+1 {
			break
		}
		var stolen *job
		for id := range victim.leases {
			if victim.running[id] {
				continue
			}
			if j, ok := s.jobs[id]; ok && !j.state.Terminal() {
				stolen = j
				break
			}
		}
		if stolen == nil {
			break
		}
		delete(victim.leases, stolen.id)
		delete(victim.running, stolen.id)
		victim.revoked = append(victim.revoked, stolen.id)
		s.clu.steals++
		s.appendEventLocked(stolen, JobEvent{Type: "progress",
			Message: fmt.Sprintf("stolen from worker %s backlog by %s", victim.id, w.id)})
		out = append(out, s.leaseToLocked(w, stolen, now, true))
		s.logf("job %s: stolen from %s backlog by %s", shortID(stolen.id), victim.id, w.id)
	}
	return out
}

// popPendingLocked returns the next dispatchable job, skipping stale
// queue entries (cancelled, dead-lettered, completed-by-zombie).
func (s *Server) popPendingLocked() *job {
	for len(s.clu.pending) > 0 {
		id := s.clu.pending[0]
		s.clu.pending = s.clu.pending[1:]
		if j, ok := s.jobs[id]; ok && j.state == StateQueued {
			return j
		}
	}
	return nil
}

// leaseToLocked records a lease and moves the job into the running
// state (steals keep it running; the accounting moved with the lease).
func (s *Server) leaseToLocked(w *worker, j *job, now time.Time, stolen bool) LeasedJob {
	w.leases[j.id] = now.Add(s.clu.leaseTTL)
	j.workerID = w.id
	if !stolen {
		s.queued--
		j.dequeued = true
		j.state = StateRunning
		j.startedAt = now
		s.running++
		s.met.observeQueueWait(now.Sub(j.queuedAt).Seconds())
		s.appendEventLocked(j, JobEvent{Type: "state", State: StateRunning})
	}
	s.appendEventLocked(j, JobEvent{Type: "progress",
		Message: fmt.Sprintf("leased to worker %s (%s)", w.id, w.name)})
	return LeasedJob{JobID: j.id, Identity: j.identity, Progress: j.spec.Progress, Attempt: j.attempts}
}

// stealVictimLocked picks the active worker (other than w) with the
// deepest unstarted backlog, deterministically tie-broken by id.
func (s *Server) stealVictimLocked(w *worker) *worker {
	var best *worker
	for _, cand := range s.clu.workers {
		if cand == w || cand.state != workerActive || cand.unstarted() == 0 {
			continue
		}
		if best == nil || cand.unstarted() > best.unstarted() ||
			(cand.unstarted() == best.unstarted() && cand.id < best.id) {
			best = cand
		}
	}
	return best
}

// takeRevokedLocked drains the worker's pending revocation list.
func takeRevokedLocked(w *worker) []string {
	out := w.revoked
	w.revoked = nil
	return out
}

// touchLocked renews a worker's liveness and every lease it holds.
func (s *Server) touchLocked(w *worker, now time.Time) {
	w.lastBeat = now
	deadline := now.Add(s.clu.leaseTTL)
	for id := range w.leases {
		w.leases[id] = deadline
	}
}

// clusterStats is the /metrics snapshot of the scheduler.
type clusterStats struct {
	enabled          bool
	active, dead     int
	leaseExpiries    int64
	requeues         int64
	steals           int64
	digestMismatches int64
}

// clusterStatsLocked snapshots the worker registry for the metrics
// scrape. Caller holds the server mutex.
func (s *Server) clusterStatsLocked() clusterStats {
	st := clusterStats{enabled: s.opts.Cluster}
	if s.clu == nil {
		return st
	}
	st.leaseExpiries = s.clu.leaseExpiries
	st.requeues = s.clu.requeues
	st.steals = s.clu.steals
	st.digestMismatches = s.clu.digestMismatches
	for _, w := range s.clu.workers {
		switch w.state {
		case workerActive:
			st.active++
		case workerDead:
			st.dead++
		}
	}
	return st
}

// ---- HTTP handlers ----

// clusterOnly guards worker-facing endpoints on non-cluster daemons.
func (s *Server) clusterOnly(w http.ResponseWriter) bool {
	if s.clu == nil {
		s.respondError(w, http.StatusNotFound,
			errors.New("not a cluster coordinator (start comad serve -cluster)"))
		return false
	}
	return true
}

// lookupWorker resolves {id}; unknown or dead workers get 410 so agents
// know to re-register rather than retry.
func (s *Server) lookupWorker(w http.ResponseWriter, r *http.Request) *worker {
	s.mu.Lock()
	wk := s.clu.workers[r.PathValue("id")]
	if wk != nil && wk.state != workerActive {
		wk = nil
	}
	s.mu.Unlock()
	if wk == nil {
		s.respondError(w, http.StatusGone, errors.New("unknown worker (re-register)"))
	}
	return wk
}

func (s *Server) handleWorkerRegister(w http.ResponseWriter, r *http.Request) {
	if !s.clusterOnly(w) {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	var req RegisterRequest
	if err := dec.Decode(&req); err != nil {
		s.respondError(w, http.StatusBadRequest, fmt.Errorf("decoding register request: %w", err))
		return
	}
	if req.Slots < 1 {
		req.Slots = 1
	}
	if req.Revision != "" && s.opts.Revision != "" && req.Revision != s.opts.Revision {
		s.respondError(w, http.StatusConflict, fmt.Errorf(
			"revision mismatch: worker built at %q, coordinator at %q — results would poison the cache",
			req.Revision, s.opts.Revision))
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.clu.nextWorker++
	wk := &worker{
		id:       fmt.Sprintf("w%d", s.clu.nextWorker),
		name:     req.Name,
		slots:    req.Slots,
		state:    workerActive,
		lastBeat: now,
		leases:   make(map[string]time.Time),
		running:  make(map[string]bool),
	}
	s.clu.workers[wk.id] = wk
	s.mu.Unlock()
	s.logf("cluster: worker %s registered (%s, %d slot(s))", wk.id, wk.name, wk.slots)
	s.respondJSON(w, http.StatusOK, RegisterResponse{
		WorkerID:    wk.id,
		LeaseTTLMS:  s.clu.leaseTTL.Milliseconds(),
		HeartbeatMS: s.clu.heartbeatEvery.Milliseconds(),
	})
}

func (s *Server) handleWorkerList(w http.ResponseWriter, r *http.Request) {
	if !s.clusterOnly(w) {
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.sweepLocked(now)
	list := make([]WorkerStatus, 0, len(s.clu.workers))
	for i := 1; i <= s.clu.nextWorker; i++ { // stable id order
		wk, ok := s.clu.workers[fmt.Sprintf("w%d", i)]
		if !ok {
			continue
		}
		list = append(list, WorkerStatus{
			ID: wk.id, Name: wk.name, State: wk.state, Slots: wk.slots,
			Leases: len(wk.leases), Running: len(wk.running),
			Completed:   wk.completed,
			SinceBeatMS: msBetween(wk.lastBeat, now),
		})
	}
	queued := s.queued
	s.mu.Unlock()
	s.respondJSON(w, http.StatusOK, map[string]any{"workers": list, "queued": queued})
}

func (s *Server) handleWorkerHeartbeat(w http.ResponseWriter, r *http.Request) {
	if !s.clusterOnly(w) {
		return
	}
	wk := s.lookupWorker(w, r)
	if wk == nil {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	var req HeartbeatRequest
	if err := dec.Decode(&req); err != nil {
		s.respondError(w, http.StatusBadRequest, fmt.Errorf("decoding heartbeat: %w", err))
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.touchLocked(wk, now)
	wk.running = make(map[string]bool, len(req.Running))
	for _, id := range req.Running {
		if _, leased := wk.leases[id]; leased {
			wk.running[id] = true
		}
	}
	s.sweepLocked(now)
	resp := HeartbeatResponse{Revoked: takeRevokedLocked(wk), Draining: s.draining}
	s.mu.Unlock()
	s.respondJSON(w, http.StatusOK, resp)
}

// leasePollEvery bounds how long a long-polling lease handler sleeps
// between dispatch attempts, so lazy sweeps keep running while a fleet
// waits for work.
const leasePollEvery = 250 * time.Millisecond

func (s *Server) handleWorkerLease(w http.ResponseWriter, r *http.Request) {
	if !s.clusterOnly(w) {
		return
	}
	wk := s.lookupWorker(w, r)
	if wk == nil {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	var req LeaseRequest
	if err := dec.Decode(&req); err != nil {
		s.respondError(w, http.StatusBadRequest, fmt.Errorf("decoding lease request: %w", err))
		return
	}
	if req.Max < 1 {
		req.Max = 1
	}
	deadline := time.Now().Add(time.Duration(req.WaitMS) * time.Millisecond)
	for {
		now := time.Now()
		s.mu.Lock()
		if wk.state != workerActive {
			// Declared dead mid-poll (a very slow long-poll): the agent
			// must re-register before it may hold leases again.
			s.mu.Unlock()
			s.respondError(w, http.StatusGone, errors.New("unknown worker (re-register)"))
			return
		}
		s.touchLocked(wk, now)
		s.sweepLocked(now)
		jobs := s.assignLocked(wk, req.Max, now)
		resp := LeaseResponse{Jobs: jobs, Revoked: takeRevokedLocked(wk), Draining: s.draining}
		wake := s.clu.wake
		s.mu.Unlock()

		if len(resp.Jobs) > 0 || len(resp.Revoked) > 0 || resp.Draining || !now.Before(deadline) {
			s.respondJSON(w, http.StatusOK, resp)
			return
		}
		sleep := time.Until(deadline)
		if sleep > leasePollEvery {
			sleep = leasePollEvery
		}
		timer := time.NewTimer(sleep)
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
		timer.Stop()
	}
}

func (s *Server) handleWorkerComplete(w http.ResponseWriter, r *http.Request) {
	if !s.clusterOnly(w) {
		return
	}
	s.mu.Lock()
	wk := s.clu.workers[r.PathValue("id")]
	s.mu.Unlock()
	if wk == nil {
		// Even a worker we have declared dead may deliver a result it
		// finished before anyone noticed — but one we never knew cannot.
		s.respondError(w, http.StatusGone, errors.New("unknown worker (re-register)"))
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	var req CompleteRequest
	if err := dec.Decode(&req); err != nil {
		s.respondError(w, http.StatusBadRequest, fmt.Errorf("decoding completion: %w", err))
		return
	}
	if req.Error == "" && len(req.Result) == 0 {
		s.respondError(w, http.StatusBadRequest, errors.New("completion carries neither result nor error"))
		return
	}

	// Validate the payload before it can touch the store: the result
	// must survive a MarshalResult round trip, and the worker's receipt
	// (when present — always, when a receipt key is enforced) must name
	// this job and carry the payload's exact digest. Pure CPU, so it
	// runs outside the scheduler lock.
	var vErr error
	var rcpt receipt.Receipt
	var hasReceipt bool
	if req.Error == "" {
		rcpt, hasReceipt, vErr = s.validateCompletion(req)
	}

	now := time.Now()
	s.mu.Lock()
	if wk.state == workerActive {
		s.touchLocked(wk, now)
	}
	j, ok := s.jobs[req.JobID]
	if !ok {
		s.mu.Unlock()
		s.respondError(w, http.StatusNotFound, errors.New("unknown job"))
		return
	}
	delete(wk.leases, req.JobID)
	delete(wk.running, req.JobID)
	if j.state.Terminal() {
		if vErr != nil {
			// Corrupt duplicate: the job already completed from elsewhere,
			// so the poison had nowhere to land — still refuse it.
			s.clu.digestMismatches++
			s.mu.Unlock()
			s.respondError(w, http.StatusUnprocessableEntity, vErr)
			return
		}
		// Duplicate completion (requeue raced the original worker):
		// determinism makes both results identical, first one won.
		st := j.status(false)
		s.mu.Unlock()
		s.respondJSON(w, http.StatusOK, st)
		return
	}
	if vErr != nil {
		// A corrupt or byzantine completion is treated like a lease
		// expiry: the attempt is burned and the job goes back on the
		// queue for a different execution (dead-letter past the limit).
		s.clu.digestMismatches++
		if j.state == StateRunning && j.workerID == wk.id {
			s.requeueLocked(j, fmt.Sprintf("completion from worker %s rejected: %v", wk.id, vErr), true)
		}
		s.mu.Unlock()
		s.logf("job %s: completion from worker %s rejected: %v", shortID(req.JobID), wk.id, vErr)
		s.respondError(w, http.StatusUnprocessableEntity, vErr)
		return
	}
	switch j.state {
	case StateRunning:
		s.running--
	case StateQueued:
		// A zombie finished a job that had already been requeued; accept
		// the result and pull it back off the queue accounting.
		if !j.dequeued {
			s.queued--
			j.dequeued = true
		}
	}
	j.workerID = ""
	j.finishedAt = now
	wk.completed++
	var persistErr error
	if req.Error != "" {
		j.errMsg = req.Error
		s.finishLocked(j, StateFailed)
	} else {
		j.result = append([]byte(nil), req.Result...)
		persistErr = s.store.Put(j.id, j.result)
		s.finishLocked(j, StateDone)
	}
	st := j.status(false)
	started := j.startedAt
	identity := j.identity
	s.mu.Unlock()

	if req.Error != "" {
		s.logf("job %s: failed on worker %s: %s", shortID(req.JobID), wk.id, req.Error)
	} else {
		if !hasReceipt {
			// Worker sent no receipt (older agent, or receipts disabled):
			// synthesize an unchecked one from the validated payload so
			// every completed job still serves /receipt.
			rcpt, _, vErr = receipt.Build(identity, req.Result, nil, workerProducer(wk))
		}
		if vErr == nil {
			if !hasReceipt && len(s.opts.ReceiptKey) > 0 {
				rcpt = rcpt.Sign(s.opts.ReceiptKey)
			}
			s.storeReceipt(req.JobID, rcpt, nil)
		}
		if !started.IsZero() {
			s.met.observeRunTime(now.Sub(started).Seconds())
		}
		s.logf("job %s: done on worker %s in %.1f ms", shortID(req.JobID), wk.id, msBetween(started, now))
	}
	if persistErr != nil {
		s.logf("job %s: persisting result: %v", shortID(req.JobID), persistErr)
	}
	s.respondJSON(w, http.StatusOK, st)
}

// workerProducer is the producer identity recorded in receipts for a
// worker's runs.
func workerProducer(wk *worker) string {
	if wk.name != "" {
		return wk.name
	}
	return wk.id
}

// validateCompletion checks a successful completion before it is
// accepted: the result payload must round-trip through the canonical
// MarshalResult encoding, and the attached receipt — mandatory when the
// coordinator enforces a receipt key — must parse, verify, name this
// job's content address, and record the payload's exact SHA-256. The
// returned receipt is the worker's (hasReceipt true) or zero.
func (s *Server) validateCompletion(req CompleteRequest) (rcpt receipt.Receipt, hasReceipt bool, err error) {
	if _, perr := receipt.ParseResult(req.Result); perr != nil {
		return rcpt, false, fmt.Errorf("result payload rejected: %w", perr)
	}
	if len(req.Receipt) == 0 {
		if len(s.opts.ReceiptKey) > 0 {
			return rcpt, false, errors.New("receipt required: coordinator enforces signed receipts")
		}
		return rcpt, false, nil
	}
	rcpt, perr := receipt.Parse(req.Receipt)
	if perr != nil {
		return rcpt, false, fmt.Errorf("receipt rejected: %w", perr)
	}
	if len(s.opts.ReceiptKey) > 0 {
		if serr := rcpt.VerifySignature(s.opts.ReceiptKey); serr != nil {
			return rcpt, false, fmt.Errorf("receipt signature rejected: %w", serr)
		}
	}
	if rcpt.RunHash != req.JobID {
		return rcpt, false, fmt.Errorf("receipt names run %s, not job %s",
			shortID(rcpt.RunHash), shortID(req.JobID))
	}
	if got := receipt.Digest(req.Result); got != rcpt.ResultDigest {
		return rcpt, false, fmt.Errorf("result digest mismatch: receipt records %s, payload hashes to %s",
			shortID(rcpt.ResultDigest), shortID(got))
	}
	return rcpt, true, nil
}

func (s *Server) handleWorkerProgress(w http.ResponseWriter, r *http.Request) {
	if !s.clusterOnly(w) {
		return
	}
	wk := s.lookupWorker(w, r)
	if wk == nil {
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	var req ProgressRequest
	if err := dec.Decode(&req); err != nil {
		s.respondError(w, http.StatusBadRequest, fmt.Errorf("decoding progress batch: %w", err))
		return
	}
	s.mu.Lock()
	s.touchLocked(wk, time.Now())
	if j, ok := s.jobs[req.JobID]; ok && !j.state.Terminal() {
		for _, ev := range req.Events {
			s.appendEventLocked(j, JobEvent{Type: "progress", Message: ev.Message, SimCycles: ev.SimCycles})
		}
	}
	s.mu.Unlock()
	s.respondJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleWorkerDeregister(w http.ResponseWriter, r *http.Request) {
	if !s.clusterOnly(w) {
		return
	}
	s.mu.Lock()
	wk := s.clu.workers[r.PathValue("id")]
	if wk == nil {
		s.mu.Unlock()
		s.respondError(w, http.StatusGone, errors.New("unknown worker"))
		return
	}
	returned := 0
	for id := range wk.leases {
		delete(wk.leases, id)
		delete(wk.running, id)
		if j, ok := s.jobs[id]; ok && !j.state.Terminal() {
			// Voluntary return: requeue without burning an attempt.
			s.requeueLocked(j, fmt.Sprintf("worker %s deregistered", wk.id), false)
			returned++
		}
	}
	delete(s.clu.workers, wk.id)
	s.mu.Unlock()
	s.logf("cluster: worker %s (%s) deregistered, %d lease(s) returned", wk.id, wk.name, returned)
	s.respondJSON(w, http.StatusOK, map[string]any{"status": "ok", "returned": returned})
}

package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"coma/internal/config"
	"coma/internal/obs"
	"coma/internal/stats"
)

// fakeRun is the result every fake runner returns; any JSON-stable
// payload works, the scheduler never looks inside.
func fakeRun(id config.RunIdentity) *stats.Run {
	return &stats.Run{Cycles: 12345, Protocol: id.Protocol, Nodes: id.Arch.Nodes}
}

// newTestServer boots a Server over httptest with the given runner.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// specJSON builds a minimal valid spec, seed-distinguished.
func specJSON(seed uint64) string {
	return fmt.Sprintf(`{"app":"mp3d","nodes":2,"protocol":"ecp","seed":%d}`, seed)
}

func postJob(t *testing.T, ts *httptest.Server, body string, wait bool) (*http.Response, JobStatus) {
	t.Helper()
	url := ts.URL + "/v1/jobs"
	if wait {
		url += "?wait=1"
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, &st); err != nil {
			t.Fatalf("decoding job status from %q: %v", raw, err)
		}
	}
	return resp, st
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
		return fakeRun(id), nil
	}})
	cases := []struct {
		name, body, wantErr string
	}{
		{"malformed json", `{"app":`, "decoding job spec"},
		{"unknown field", `{"app":"mp3d","nodes":2,"protocol":"ecp","bogus":1}`, "bogus"},
		{"unknown app", `{"app":"doom","nodes":2,"protocol":"ecp"}`, "unknown app"},
		{"unknown protocol", `{"app":"mp3d","nodes":2,"protocol":"mesi"}`, "unknown protocol"},
		{"zero nodes", `{"app":"mp3d","nodes":0,"protocol":"ecp"}`, "nodes = 0"},
		{"standard with hz", `{"app":"mp3d","nodes":2,"protocol":"standard","hz":100}`, "requires the ecp protocol"},
		{"standard with failures", `{"app":"mp3d","nodes":2,"protocol":"standard","failures":[{"at":10,"node":0}]}`, "requires the ecp protocol"},
		{"negative scale", `{"app":"mp3d","nodes":2,"protocol":"ecp","scale":-1}`, "negative instruction budget"},
		{"negative hz", `{"app":"mp3d","nodes":2,"protocol":"ecp","hz":-5}`, "negative checkpoint frequency"},
		{"negative deadline", `{"app":"mp3d","nodes":2,"protocol":"ecp","deadline_ms":-1}`, "negative limit"},
		{"failure node out of range", `{"app":"mp3d","nodes":2,"protocol":"ecp","failures":[{"at":10,"node":7}]}`, "names node n7"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, _ := postJob(t, ts, tc.body, false)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400", resp.StatusCode)
			}
			raw, _ := io.ReadAll(resp.Body)
			// Body already drained by postJob; re-fetch the error text.
			_ = raw
			resp2, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp2.Body.Close()
			body, _ := io.ReadAll(resp2.Body)
			if !strings.Contains(string(body), tc.wantErr) {
				t.Fatalf("error body %q does not mention %q", body, tc.wantErr)
			}
		})
	}
}

func TestQueueFullGets429WithRetryAfter(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 1,
		Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
			<-gate
			return fakeRun(id), nil
		},
	})
	defer close(gate)

	// Job 1 occupies the worker, job 2 fills the queue. The pool dequeues
	// job 1 asynchronously, so wait until it actually starts running.
	resp1, st1 := postJob(t, ts, specJSON(1), false)
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d, want 202", resp1.StatusCode)
	}
	waitForState(t, ts, st1.ID, StateRunning)
	if resp, _ := postJob(t, ts, specJSON(2), false); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d, want 202", resp.StatusCode)
	}

	resp3, _ := postJob(t, ts, specJSON(3), false)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", resp3.StatusCode)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
}

// waitForState polls GET /v1/jobs/{id} until the job reaches state st.
func waitForState(t *testing.T, ts *httptest.Server, id string, want State) JobStatus {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st JobStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State == want {
			return st
		}
		if st.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s: state %s, want %s", id, st.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestSSEEventOrder(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers: 1,
		Runner: func(id config.RunIdentity, opts RunOptions) (*stats.Run, error) {
			// Drive the progress bridge like the simulator would.
			opts.Observer.Emit(obs.Event{Kind: obs.KRoundBegin, Time: 100, B: 1})
			opts.Observer.Emit(obs.Event{Kind: obs.KReadFill, Time: 150}) // hot-path: dropped
			opts.Observer.Emit(obs.Event{Kind: obs.KCommitted, Time: 200, B: 1})
			return fakeRun(id), nil
		},
	})

	_, st := postJob(t, ts, `{"app":"mp3d","nodes":2,"protocol":"ecp","hz":100,"progress":true}`, true)
	if st.State != StateDone {
		t.Fatalf("job state %s, want done", st.State)
	}

	// The job is terminal, so the SSE handler replays the full log and
	// returns; read it all and check exact order and contiguous ids.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	body, _ := io.ReadAll(resp.Body)

	var events []JobEvent
	for _, frame := range strings.Split(strings.TrimSpace(string(body)), "\n\n") {
		for _, line := range strings.Split(frame, "\n") {
			if data, ok := strings.CutPrefix(line, "data: "); ok {
				var ev JobEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					t.Fatalf("bad data line %q: %v", data, err)
				}
				events = append(events, ev)
			}
		}
	}

	want := []struct {
		typ   string
		state State
	}{
		{"state", StateQueued},
		{"state", StateRunning},
		{"progress", ""},
		{"progress", ""},
		{"state", StateDone},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d events %+v, want %d", len(events), events, len(want))
	}
	for i, ev := range events {
		if ev.Seq != i {
			t.Errorf("event %d: seq %d, want %d", i, ev.Seq, i)
		}
		if ev.Type != want[i].typ || ev.State != want[i].state {
			t.Errorf("event %d = {%s %s}, want {%s %s}", i, ev.Type, ev.State, want[i].typ, want[i].state)
		}
	}
	if !strings.Contains(events[2].Message, "round 1 begin") {
		t.Errorf("progress message %q, want round begin", events[2].Message)
	}
	if events[2].SimCycles != 100 {
		t.Errorf("progress sim_cycles %d, want 100", events[2].SimCycles)
	}
}

func TestCancelQueuedJobAndRefuseRunning(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 4,
		Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
			<-gate
			return fakeRun(id), nil
		},
	})

	_, running := postJob(t, ts, specJSON(1), false)
	waitForState(t, ts, running.ID, StateRunning)
	_, queued := postJob(t, ts, specJSON(2), false)

	del := func(id string) *http.Response {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}
	if resp := del(queued.ID); resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel queued: status %d, want 200", resp.StatusCode)
	}
	waitForState(t, ts, queued.ID, StateCancelled)
	if resp := del(running.ID); resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel running: status %d, want 409", resp.StatusCode)
	}
	close(gate)
	waitForState(t, ts, running.ID, StateDone)
}

func TestQueueDeadlineFailsStaleJob(t *testing.T) {
	gate := make(chan struct{})
	_, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 4,
		Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
			<-gate
			return fakeRun(id), nil
		},
	})

	_, first := postJob(t, ts, specJSON(1), false)
	waitForState(t, ts, first.ID, StateRunning)
	_, stale := postJob(t, ts, `{"app":"mp3d","nodes":2,"protocol":"ecp","seed":2,"deadline_ms":1}`, false)
	time.Sleep(20 * time.Millisecond) // let the deadline lapse while queued
	close(gate)

	st := waitForState(t, ts, stale.ID, StateFailed)
	if !strings.Contains(st.Error, "deadline exceeded") {
		t.Fatalf("error %q, want deadline exceeded", st.Error)
	}
	waitForState(t, ts, first.ID, StateDone)
}

func TestResultEndpointServesStoredBytes(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
		return fakeRun(id), nil
	}})
	_, st := postJob(t, ts, specJSON(7), true)
	if st.State != StateDone {
		t.Fatalf("state %s, want done", st.State)
	}
	get := func() []byte {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result: status %d", resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return body
	}
	a, b := get(), get()
	if string(a) != string(b) {
		t.Fatalf("result bytes differ between reads")
	}
	if string(a) != string(st.Result) {
		t.Fatalf("raw result differs from inline result payload")
	}
	var run stats.Run
	if err := json.Unmarshal(a, &run); err != nil {
		t.Fatalf("result is not a stats.Run: %v", err)
	}
	if run.Cycles != 12345 {
		t.Fatalf("round-tripped Cycles = %d, want 12345", run.Cycles)
	}
}

func TestMetricsAndHealthz(t *testing.T) {
	var runs atomic.Int64
	_, ts := newTestServer(t, Options{Workers: 2, Runner: func(id config.RunIdentity, opts RunOptions) (*stats.Run, error) {
		runs.Add(1)
		// The bridge is installed even without progress streaming, so
		// these must surface as coma_obs_events_total below.
		opts.Observer.Emit(obs.Event{Kind: obs.KReadFill, Time: 10})
		opts.Observer.Emit(obs.Event{Kind: obs.KReadFill, Time: 20})
		opts.Observer.Emit(obs.Event{Kind: obs.KTxnBegin, Time: 30})
		return fakeRun(id), nil
	}})
	postJob(t, ts, specJSON(1), true)
	postJob(t, ts, specJSON(1), true) // identical: cache hit

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"comad_jobs_submitted_total 2",
		`comad_cache_requests_total{outcome="miss"} 1`,
		`comad_cache_requests_total{outcome="hit"} 1`,
		`comad_jobs_total{state="done"} 1`,
		"comad_queue_wait_seconds_count 1",
		"comad_store_entries 1",
		`coma_obs_events_total{kind="read-fill"} 2`,
		`coma_obs_events_total{kind="txn-begin"} 1`,
		`coma_obs_events_total{kind="state"} 0`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if runs.Load() != 1 {
		t.Fatalf("runner executed %d times, want 1", runs.Load())
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hz.Body.Close()
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(hz.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Draining {
		t.Fatalf("healthz = %+v, want ok/not draining", health)
	}
}

package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"coma/internal/config"
	"coma/internal/obs/receipt"
	"coma/internal/stats"
)

// fetch GETs a job sub-resource, returning status code and body.
func fetch(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// TestLocalJobEmitsReceipt: every locally executed job leaves a receipt
// in the store (unchecked verdict here: the counting runner never emits
// observability events), served on /receipt and counted on /metrics.
func TestLocalJobEmitsReceipt(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, Revision: "rcpt-rev",
		Runner: func(id config.RunIdentity, _ RunOptions) (*stats.Run, error) {
			return fakeRun(id), nil
		}})
	resp, st := postJob(t, ts, specJSON(1), true)
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit: status %d state %s", resp.StatusCode, st.State)
	}

	code, body := fetch(t, ts, "/v1/jobs/"+st.ID+"/receipt")
	if code != http.StatusOK {
		t.Fatalf("GET receipt: status %d (%s)", code, body)
	}
	rcpt, err := receipt.Parse(body)
	if err != nil {
		t.Fatalf("served receipt does not parse: %v", err)
	}
	if rcpt.RunHash != st.ID || rcpt.Producer != receipt.ProducerLocal {
		t.Fatalf("receipt = %s, want run_hash %s producer local", body, st.ID)
	}
	if rcpt.VerdictLabel() != "unchecked" {
		t.Fatalf("verdict = %s, want unchecked (no events recorded)", rcpt.VerdictLabel())
	}
	if rcpt.Revision != "rcpt-rev" {
		t.Fatalf("receipt revision = %q, want rcpt-rev", rcpt.Revision)
	}

	// The receipt attests against the exact bytes /result serves.
	code, result := fetch(t, ts, "/v1/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("GET result: status %d", code)
	}
	if err := rcpt.Attest(receipt.Artifacts{Result: result}, nil); err != nil {
		t.Fatalf("served receipt fails against served result: %v", err)
	}

	m := parseExposition(t, scrape(t, ts))
	if m[`coma_receipts_total{verdict="unchecked"}`] != 1 {
		t.Fatalf("receipts{unchecked} = %v, want 1", m[`coma_receipts_total{verdict="unchecked"}`])
	}

	// No trace was recorded (no events), so /trace is absent.
	if code, _ := fetch(t, ts, "/v1/jobs/"+st.ID+"/trace"); code != http.StatusNotFound {
		t.Fatalf("GET trace: status %d, want 404", code)
	}
}

// TestRealRunReceiptAttestsEndToEnd drives the real simulator through
// the daemon and closes the whole loop over HTTP: receipt + result +
// trace fetched, signature verified, every digest and the invariant
// verdict recomputed.
func TestRealRunReceiptAttestsEndToEnd(t *testing.T) {
	key := []byte("e2e-receipt-key")
	_, ts := newTestServer(t, Options{Workers: 1, ReceiptKey: key})
	resp, st := postJob(t, ts, `{"app":"uniform","nodes":4,"protocol":"ecp","seed":11,"scale":0.001,"hz":50}`, true)
	if resp.StatusCode != http.StatusOK || st.State != StateDone {
		t.Fatalf("submit: status %d state %s err %q", resp.StatusCode, st.State, st.Error)
	}
	_, body := fetch(t, ts, "/v1/jobs/"+st.ID+"/receipt")
	rcpt, err := receipt.Parse(body)
	if err != nil {
		t.Fatalf("receipt: %v", err)
	}
	if rcpt.VerdictLabel() != "ok" {
		t.Fatalf("verdict = %s, want ok", rcpt.VerdictLabel())
	}
	if rcpt.TraceEvents == 0 || rcpt.Invariants.EdgesTotal != 35 {
		t.Fatalf("receipt trace summary implausible: %s", body)
	}
	_, result := fetch(t, ts, "/v1/jobs/"+st.ID+"/result")
	code, trace := fetch(t, ts, "/v1/jobs/"+st.ID+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: status %d", code)
	}
	if err := rcpt.Attest(receipt.Artifacts{Result: result, Trace: trace}, key); err != nil {
		t.Fatalf("end-to-end attestation failed: %v", err)
	}
	// Tamper check across the HTTP surface too: one byte in the served
	// trace must be caught.
	bad := append([]byte(nil), trace...)
	bad[len(bad)/2] ^= 1
	err = rcpt.Attest(receipt.Artifacts{Result: result, Trace: bad}, key)
	fe, ok := err.(*receipt.FieldError)
	if !ok || fe.Field != "trace_digest" {
		t.Fatalf("tampered trace: err = %v, want trace_digest field error", err)
	}
}

// TestCompleteRejectsGarbagePayload: a payload that fails the
// MarshalResult round trip is refused with 422, the job requeues with
// its attempt burned (lease-expiry semantics), and the mismatch metric
// increments; a subsequent well-formed completion lands byte-identical.
func TestCompleteRejectsGarbagePayload(t *testing.T) {
	_, ts := newTestServer(t, Options{Cluster: true, Revision: "test-rev"})
	wid := registerWorker(t, ts, "sloppy", 1)
	resp, st := postJob(t, ts, specJSON(21), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	lr := leaseJobs(t, ts, wid, 1)
	if len(lr.Jobs) != 1 {
		t.Fatalf("lease = %+v", lr)
	}

	for _, garbage := range []string{`"not a run"`, `{"bogus_field":1}`, `{}`} {
		cresp := workerPost(t, ts, "/v1/workers/"+wid+"/complete",
			CompleteRequest{JobID: st.ID, Result: json.RawMessage(garbage)}, nil)
		if cresp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("garbage %q: status %d, want 422", garbage, cresp.StatusCode)
		}
		// Only the first rejection requeues (the worker no longer owns
		// the job afterwards); all of them count as mismatches.
	}
	got := jobStatus(t, ts, st.ID)
	if got.State != StateQueued || got.Requeues != 1 {
		t.Fatalf("after rejection: state=%s requeues=%d, want queued/1", got.State, got.Requeues)
	}
	m := parseExposition(t, scrape(t, ts))
	if m["coma_cluster_digest_mismatches_total"] != 3 {
		t.Fatalf("digest mismatches = %v, want 3", m["coma_cluster_digest_mismatches_total"])
	}

	// The same worker re-leases the requeued job and completes properly.
	lr = leaseJobs(t, ts, wid, 1)
	if len(lr.Jobs) != 1 || lr.Jobs[0].Attempt != 1 {
		t.Fatalf("re-lease = %+v, want attempt 1", lr)
	}
	payload, err := MarshalResult(fakeRun(lr.Jobs[0].Identity))
	if err != nil {
		t.Fatal(err)
	}
	cresp := workerPost(t, ts, "/v1/workers/"+wid+"/complete",
		CompleteRequest{JobID: st.ID, Result: payload}, nil)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("valid complete: status %d", cresp.StatusCode)
	}
	_, stored := fetch(t, ts, "/v1/jobs/"+st.ID+"/result")
	if !bytes.Equal(stored, payload) {
		t.Fatal("stored payload differs from the worker's valid result")
	}
	// The coordinator synthesized an unchecked receipt for the
	// receipt-less completion.
	code, body := fetch(t, ts, "/v1/jobs/"+st.ID+"/receipt")
	if code != http.StatusOK {
		t.Fatalf("GET receipt: status %d", code)
	}
	rcpt, err := receipt.Parse(body)
	if err != nil || rcpt.Producer != "sloppy" || rcpt.VerdictLabel() != "unchecked" {
		t.Fatalf("synthesized receipt = %s (err %v), want unchecked from sloppy", body, err)
	}
}

// TestClusterDigestMismatchRequeuedByteIdentical is the acceptance
// scenario: a worker whose result bytes were corrupted in transit
// (receipt digest no longer matches) is rejected and the job requeued
// like a lease expiry; a healthy completion then lands, and the cached
// table is byte-identical to what a local run of the same identity
// produces.
func TestClusterDigestMismatchRequeuedByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Options{Cluster: true, Revision: "test-rev"})
	wid := registerWorker(t, ts, "corrupted", 1)
	resp, st := postJob(t, ts, specJSON(22), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	lr := leaseJobs(t, ts, wid, 1)
	if len(lr.Jobs) != 1 {
		t.Fatalf("lease = %+v", lr)
	}
	identity := lr.Jobs[0].Identity

	// The reference payload: what any in-process run of this identity
	// marshals to (the runner is deterministic in the identity).
	local, err := MarshalResult(fakeRun(identity))
	if err != nil {
		t.Fatal(err)
	}
	rcpt, _, err := receipt.Build(identity, local, nil, "corrupted")
	if err != nil {
		t.Fatal(err)
	}

	// In-transit corruption: the receipt was computed over the genuine
	// bytes, the payload that arrives differs by one byte (still valid
	// JSON so only the digest can catch it).
	corrupt := bytes.Replace(local, []byte(`"Cycles":12345`), []byte(`"Cycles":12346`), 1)
	if bytes.Equal(corrupt, local) {
		t.Fatalf("corruption did not apply to %s", local)
	}
	cresp := workerPost(t, ts, "/v1/workers/"+wid+"/complete",
		CompleteRequest{JobID: st.ID, Result: corrupt, Receipt: rcpt.CanonicalJSON()}, nil)
	if cresp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt complete: status %d, want 422", cresp.StatusCode)
	}
	got := jobStatus(t, ts, st.ID)
	if got.State != StateQueued || got.Requeues != 1 {
		t.Fatalf("after mismatch: state=%s requeues=%d, want queued/1", got.State, got.Requeues)
	}
	m := parseExposition(t, scrape(t, ts))
	if m["coma_cluster_digest_mismatches_total"] != 1 || m["coma_cluster_requeues_total"] != 1 {
		t.Fatalf("mismatches/requeues = %v/%v, want 1/1",
			m["coma_cluster_digest_mismatches_total"], m["coma_cluster_requeues_total"])
	}

	// Healthy retry: genuine payload with its genuine receipt.
	lr = leaseJobs(t, ts, wid, 1)
	if len(lr.Jobs) != 1 || lr.Jobs[0].Attempt != 1 {
		t.Fatalf("re-lease = %+v, want attempt 1", lr)
	}
	cresp = workerPost(t, ts, "/v1/workers/"+wid+"/complete",
		CompleteRequest{JobID: st.ID, Result: local, Receipt: rcpt.CanonicalJSON()}, nil)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("healthy complete: status %d", cresp.StatusCode)
	}
	if got := jobStatus(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("final state = %s, want done", got.State)
	}
	_, stored := fetch(t, ts, "/v1/jobs/"+st.ID+"/result")
	if !bytes.Equal(stored, local) {
		t.Fatalf("cached table differs from the local run:\n%s\n%s", stored, local)
	}
	// The worker's own receipt is the one served.
	_, body := fetch(t, ts, "/v1/jobs/"+st.ID+"/receipt")
	if !bytes.Equal(bytes.TrimSpace(body), rcpt.CanonicalJSON()) {
		t.Fatalf("served receipt is not the worker's:\n%s\n%s", body, rcpt.CanonicalJSON())
	}
	m = parseExposition(t, scrape(t, ts))
	if m[`coma_receipts_total{verdict="unchecked"}`] != 1 {
		t.Fatalf("receipts{unchecked} = %v, want 1", m[`coma_receipts_total{verdict="unchecked"}`])
	}
}

// TestReceiptKeyEnforced: a coordinator holding a receipt key refuses
// completions without a receipt, with an unsigned receipt, and with a
// receipt signed under the wrong key; the properly signed one lands.
func TestReceiptKeyEnforced(t *testing.T) {
	key := []byte("fleet-secret")
	_, ts := newTestServer(t, Options{Cluster: true, Revision: "test-rev",
		ReceiptKey: key, LeaseTTL: time.Minute, MaxRequeues: 10})
	wid := registerWorker(t, ts, "w", 1)
	resp, st := postJob(t, ts, specJSON(23), false)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}

	relese := func() config.RunIdentity {
		t.Helper()
		lr := leaseJobs(t, ts, wid, 1)
		if len(lr.Jobs) != 1 {
			t.Fatalf("lease = %+v", lr)
		}
		return lr.Jobs[0].Identity
	}
	identity := relese()
	payload, err := MarshalResult(fakeRun(identity))
	if err != nil {
		t.Fatal(err)
	}
	rcpt, _, err := receipt.Build(identity, payload, nil, "w")
	if err != nil {
		t.Fatal(err)
	}

	for name, raw := range map[string]json.RawMessage{
		"no receipt":       nil,
		"unsigned receipt": rcpt.CanonicalJSON(),
		"wrong key":        rcpt.Sign([]byte("other")).CanonicalJSON(),
	} {
		cresp := workerPost(t, ts, "/v1/workers/"+wid+"/complete",
			CompleteRequest{JobID: st.ID, Result: payload, Receipt: raw}, nil)
		if cresp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422", name, cresp.StatusCode)
		}
		relese()
	}
	cresp := workerPost(t, ts, "/v1/workers/"+wid+"/complete",
		CompleteRequest{JobID: st.ID, Result: payload, Receipt: rcpt.Sign(key).CanonicalJSON()}, nil)
	if cresp.StatusCode != http.StatusOK {
		t.Fatalf("signed complete: status %d", cresp.StatusCode)
	}
	if got := jobStatus(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("final state = %s, want done", got.State)
	}
}

// TestStoreAuxRoundTrip covers the persistence path: aux artifacts
// written beside a result survive a store restart (read-through).
func TestStoreAuxRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := config.RunIdentity{App: "uniform", Protocol: "ecp"}.Hash()
	if err := st.Put(key, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.PutAux(key, AuxReceipt, []byte(`{"schema":"coma-receipt/v1"}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.PutAux(key, AuxTrace, []byte("{}\n")); err != nil {
		t.Fatal(err)
	}
	if err := st.PutAux(key, "evil-kind", []byte("x")); err == nil {
		t.Fatal("PutAux accepted an unknown kind")
	}

	fresh, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := fresh.GetAux(key, AuxReceipt); !ok || string(got) != `{"schema":"coma-receipt/v1"}` {
		t.Fatalf("receipt read-through = %q/%v", got, ok)
	}
	if got, ok := fresh.GetAux(key, AuxTrace); !ok || string(got) != "{}\n" {
		t.Fatalf("trace read-through = %q/%v", got, ok)
	}
	if _, ok := fresh.GetAux(key, "evil-kind"); ok {
		t.Fatal("GetAux served an unknown kind")
	}
	if _, ok := fresh.GetAux("nope", AuxReceipt); ok {
		t.Fatal("GetAux served an invalid key")
	}
}

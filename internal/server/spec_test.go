package server

import (
	"reflect"
	"testing"

	"coma/internal/config"
)

// TestSpecForIdentityRoundTrips: the explicit spec produced from an
// identity canonicalises back to exactly that identity (same revision),
// so remote campaign submissions hit the same cache entries as local
// runs of the same configuration.
func TestSpecForIdentityRoundTrips(t *testing.T) {
	identities := []config.RunIdentity{
		{
			Revision: "r1", Arch: config.KSR1(16), Protocol: "ecp",
			App: "mp3d", Instructions: 250_000, Seed: 7,
			CheckpointHz: 100, Oracle: true, MaxCycles: 1 << 40,
			Failures: []config.FailureEvent{{At: 10_000, Node: 3, Permanent: true}},
		},
		{
			Revision: "r1", Arch: config.Modern(4), Protocol: "standard",
			App: "barnes", Instructions: 1000, Oracle: true, MaxCycles: 1 << 40,
		},
		{
			Revision: "r1", Arch: config.KSR1(8), Protocol: "ecp",
			App: "water", Instructions: 5000, Seed: 3, CheckpointInterval: 2048,
			NoReplicationReuse: true, NoSharedCKReads: true,
			Strict: true, Invariants: true, MaxCycles: 1 << 30,
		},
	}
	for _, want := range identities {
		spec := SpecForIdentity(want)
		got, err := spec.Identity("r1")
		if err != nil {
			t.Fatalf("Identity(%+v): %v", spec, err)
		}
		// CanonicalJSON defaults the schema field in place; compare the
		// canonical forms, which is what the cache key hashes.
		if string(got.CanonicalJSON()) != string(want.CanonicalJSON()) {
			t.Errorf("round trip changed identity:\n got %s\nwant %s",
				got.CanonicalJSON(), want.CanonicalJSON())
		}
		if !reflect.DeepEqual(got.Failures, want.Failures) {
			t.Errorf("failures: got %+v want %+v", got.Failures, want.Failures)
		}
	}
}

package server

import "coma/internal/config"

// Health is the wire format of GET /healthz.
type Health struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	Queued   int    `json:"queued"`
	Running  int    `json:"running"`
	Workers  int    `json:"workers"`
	Revision string `json:"revision"`
	// Cluster reports coordinator mode; ClusterWorkers counts the active
	// worker nodes registered with it.
	Cluster        bool `json:"cluster,omitempty"`
	ClusterWorkers int  `json:"cluster_workers,omitempty"`
}

// SpecForIdentity is the inverse of JobSpec.Identity: a fully explicit
// spec (absolute instruction budget, explicit architecture) that
// canonicalises back to id on a daemon running the same revision. Remote
// clients that already hold a run identity — the experiment campaign's
// Remote hook — use it to submit without re-deriving flag-level inputs.
func SpecForIdentity(id config.RunIdentity) JobSpec {
	arch := id.Arch
	return JobSpec{
		App:                id.App,
		Nodes:              arch.Nodes,
		Protocol:           id.Protocol,
		Instructions:       id.Instructions,
		CheckpointHz:       id.CheckpointHz,
		CheckpointInterval: id.CheckpointInterval,
		Seed:               id.Seed,
		Arch:               &arch,
		Failures:           id.Failures,
		NoReplicationReuse: id.NoReplicationReuse,
		NoSharedCKReads:    id.NoSharedCKReads,
		NoOracle:           !id.Oracle,
		Strict:             id.Strict,
		Invariants:         id.Invariants,
		MaxCycles:          id.MaxCycles,
	}
}

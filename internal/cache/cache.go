// Package cache models the per-processor data cache of the simulated
// architecture: sectored, set-associative, write-back with respect to the
// local attraction memory. The paper's configuration is a 256 KB 8-way
// cache with 2 KB sectors and 64-byte lines; a sector holds one tag and a
// valid/dirty/writable bit per line.
//
// The cache stores a 64-bit value stamp per line (the simulator's model of
// data contents) so end-to-end value correctness can be checked against
// the machine's oracle.
package cache

import (
	"fmt"

	"coma/internal/config"
)

// Writeback describes a dirty line evicted or flushed to the local AM.
type Writeback struct {
	Addr  uint64
	Value uint64
}

// Stats counts cache activity, split by read/write as in the paper's
// Fig. 5 discussion.
type Stats struct {
	ReadHits    int64
	ReadMisses  int64
	WriteHits   int64
	WriteMisses int64
	// UpgradeMisses are writes that hit a valid but non-writable line
	// (counted inside WriteMisses as well: they cost a coherence
	// transaction even though the data was present).
	UpgradeMisses int64
	Evictions     int64
	Writebacks    int64
	Invalidations int64
}

// Accesses returns the total number of processor accesses.
func (s Stats) Accesses() int64 {
	return s.ReadHits + s.ReadMisses + s.WriteHits + s.WriteMisses
}

// MissRate returns the overall miss rate in [0,1].
func (s Stats) MissRate() float64 {
	a := s.Accesses()
	if a == 0 {
		return 0
	}
	return float64(s.ReadMisses+s.WriteMisses) / float64(a)
}

type line struct {
	valid    bool
	dirty    bool
	writable bool
	value    uint64
}

type sector struct {
	valid   bool
	tag     uint64 // global sector number
	lastUse int64
	lines   []line
}

// Cache is one processor's data cache.
type Cache struct {
	arch       config.Arch
	sets       [][]sector // [set][way]
	numSets    int
	sectorSize uint64
	stats      Stats
}

// New builds an empty cache for the architecture.
func New(arch config.Arch) *Cache {
	sectorSize := arch.CacheLineSize * arch.CacheSectors
	numSectors := arch.CacheSize / sectorSize
	numSets := numSectors / arch.CacheWays
	if numSets < 1 {
		panic(fmt.Sprintf("cache: geometry yields %d sets", numSets))
	}
	c := &Cache{
		arch:       arch,
		numSets:    numSets,
		sectorSize: uint64(sectorSize),
		sets:       make([][]sector, numSets),
	}
	for i := range c.sets {
		ways := make([]sector, arch.CacheWays)
		for w := range ways {
			ways[w].lines = make([]line, arch.CacheSectors)
		}
		c.sets[i] = ways
	}
	return c
}

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

func (c *Cache) locate(addr uint64) (setIdx int, tag uint64, lineIdx int) {
	sectorNum := addr / c.sectorSize
	return int(sectorNum % uint64(c.numSets)), sectorNum, int(addr%c.sectorSize) / c.arch.CacheLineSize
}

func (c *Cache) findSector(setIdx int, tag uint64) *sector {
	for w := range c.sets[setIdx] {
		s := &c.sets[setIdx][w]
		if s.valid && s.tag == tag {
			return s
		}
	}
	return nil
}

// Access performs one processor access. For a read it returns (value,
// true) on a hit. For a write it returns true only if the line is present
// and writable; the write is applied. On any miss the caller runs the
// below protocol and then calls Fill (and Write again for writes).
func (c *Cache) Access(addr uint64, write bool, value uint64, now int64) (uint64, bool) {
	setIdx, tag, li := c.locate(addr)
	s := c.findSector(setIdx, tag)
	if s != nil && s.lines[li].valid {
		if !write {
			s.lastUse = now
			c.stats.ReadHits++
			return s.lines[li].value, true
		}
		if s.lines[li].writable {
			s.lastUse = now
			s.lines[li].value = value
			s.lines[li].dirty = true
			c.stats.WriteHits++
			return value, true
		}
		c.stats.UpgradeMisses++
	}
	if write {
		c.stats.WriteMisses++
	} else {
		c.stats.ReadMisses++
	}
	return 0, false
}

// Contains reports whether the line covering addr is valid (without
// touching LRU state or statistics).
func (c *Cache) Contains(addr uint64) bool {
	setIdx, tag, li := c.locate(addr)
	s := c.findSector(setIdx, tag)
	return s != nil && s.lines[li].valid
}

// Writable reports whether the line covering addr is valid and writable.
func (c *Cache) Writable(addr uint64) bool {
	setIdx, tag, li := c.locate(addr)
	s := c.findSector(setIdx, tag)
	return s != nil && s.lines[li].valid && s.lines[li].writable
}

// Fill installs the line covering addr with the given value and write
// permission, allocating (and possibly evicting) a sector. It returns the
// dirty lines of an evicted sector, which the caller must write back to
// the local AM.
func (c *Cache) Fill(addr uint64, writable bool, value uint64, now int64) []Writeback {
	return c.fill(addr, writable, false, value, now)
}

// FillDirty installs the line as written data (valid, writable, dirty) —
// the write-miss completion path.
func (c *Cache) FillDirty(addr uint64, value uint64, now int64) []Writeback {
	return c.fill(addr, true, true, value, now)
}

func (c *Cache) fill(addr uint64, writable, dirty bool, value uint64, now int64) []Writeback {
	setIdx, tag, li := c.locate(addr)
	s := c.findSector(setIdx, tag)
	var evicted []Writeback
	if s == nil {
		s, evicted = c.allocate(setIdx, tag, now)
	}
	s.lastUse = now
	s.lines[li] = line{valid: true, writable: writable, dirty: dirty, value: value}
	return evicted
}

// SetItemValue refreshes the value of every valid cache line covering the
// item (the simulator models contents per item, so a write through one
// line must be visible through the other).
func (c *Cache) SetItemValue(itemAddr uint64, value uint64) {
	c.forEachLineOfItem(itemAddr, func(s *sector, li int) {
		s.lines[li].value = value
	})
}

// DowngradeAll removes write permission from every line (recovery-point
// quiesce: all Exclusive AM copies are about to become Pre-Commit).
// Dirty bits are untouched; flush first.
func (c *Cache) DowngradeAll() {
	for setIdx := range c.sets {
		for w := range c.sets[setIdx] {
			s := &c.sets[setIdx][w]
			if !s.valid {
				continue
			}
			for li := range s.lines {
				s.lines[li].writable = false
			}
		}
	}
}

func (c *Cache) allocate(setIdx int, tag uint64, now int64) (*sector, []Writeback) {
	set := c.sets[setIdx]
	victim := &set[0]
	for w := range set {
		s := &set[w]
		if !s.valid {
			victim = s
			break
		}
		if s.lastUse < victim.lastUse {
			victim = s
		}
	}
	var wbs []Writeback
	if victim.valid {
		c.stats.Evictions++
		base := victim.tag * c.sectorSize
		for i := range victim.lines {
			if victim.lines[i].valid && victim.lines[i].dirty {
				c.stats.Writebacks++
				wbs = append(wbs, Writeback{
					Addr:  base + uint64(i*c.arch.CacheLineSize),
					Value: victim.lines[i].value,
				})
			}
			victim.lines[i] = line{}
		}
	}
	victim.valid = true
	victim.tag = tag
	victim.lastUse = now
	return victim, wbs
}

// forEachLineOfItem visits the cache lines covering the item starting at
// itemAddr (LinesPerItem consecutive lines).
func (c *Cache) forEachLineOfItem(itemAddr uint64, fn func(s *sector, li int)) {
	for l := 0; l < c.arch.LinesPerItem(); l++ {
		addr := itemAddr + uint64(l*c.arch.CacheLineSize)
		setIdx, tag, li := c.locate(addr)
		if s := c.findSector(setIdx, tag); s != nil && s.lines[li].valid {
			fn(s, li)
		}
	}
}

// InvalidateItem drops all lines covering the item starting at itemAddr
// (a remote node took exclusive ownership, or recovery invalidated the
// local AM copy). Dirty contents are discarded: the coherence protocol
// guarantees a dirty line only exists while the local AM copy is
// Exclusive, and exclusivity is only revoked after the data has been
// transferred.
func (c *Cache) InvalidateItem(itemAddr uint64) int {
	n := 0
	c.forEachLineOfItem(itemAddr, func(s *sector, li int) {
		s.lines[li] = line{}
		n++
	})
	c.stats.Invalidations += int64(n)
	return n
}

// DowngradeItem clears write permission (and dirtiness) on the lines
// covering the item, keeping them readable. Used when the local AM copy
// leaves Exclusive (remote read, or checkpoint flush): the data stays in
// the cache and "can still be read by processors" (paper §4.2.3).
func (c *Cache) DowngradeItem(itemAddr uint64) {
	c.forEachLineOfItem(itemAddr, func(s *sector, li int) {
		s.lines[li].writable = false
		s.lines[li].dirty = false
	})
}

// ItemDirtyValue returns the most recent dirty value cached for the item,
// if any line covering it is dirty. The AM consults this before serving a
// remote request so the reply carries current data.
func (c *Cache) ItemDirtyValue(itemAddr uint64) (uint64, bool) {
	var v uint64
	found := false
	c.forEachLineOfItem(itemAddr, func(s *sector, li int) {
		if s.lines[li].dirty {
			v = s.lines[li].value
			found = true
		}
	})
	return v, found
}

// FlushDirty writes every dirty line back through fn (addr, value),
// clearing dirty bits but keeping lines valid and readable. Write
// permission is also dropped: after a recovery point the AM copy is no
// longer Exclusive. It returns the number of lines flushed.
func (c *Cache) FlushDirty(fn func(addr, value uint64)) int {
	n := 0
	for setIdx := range c.sets {
		for w := range c.sets[setIdx] {
			s := &c.sets[setIdx][w]
			if !s.valid {
				continue
			}
			base := s.tag * c.sectorSize
			for li := range s.lines {
				if s.lines[li].valid && s.lines[li].dirty {
					fn(base+uint64(li*c.arch.CacheLineSize), s.lines[li].value)
					s.lines[li].dirty = false
					s.lines[li].writable = false
					n++
				}
			}
		}
	}
	return n
}

// DirtyLines returns the number of dirty lines currently held.
func (c *Cache) DirtyLines() int {
	n := 0
	for setIdx := range c.sets {
		for w := range c.sets[setIdx] {
			s := &c.sets[setIdx][w]
			if !s.valid {
				continue
			}
			for li := range s.lines {
				if s.lines[li].valid && s.lines[li].dirty {
					n++
				}
			}
		}
	}
	return n
}

// InvalidateAll empties the cache (recovery rollback: Shared copies
// cannot be told apart from stale data, so everything goes).
func (c *Cache) InvalidateAll() {
	for setIdx := range c.sets {
		for w := range c.sets[setIdx] {
			s := &c.sets[setIdx][w]
			if s.valid {
				for li := range s.lines {
					if s.lines[li].valid {
						c.stats.Invalidations++
					}
				}
			}
			*s = sector{lines: s.lines}
			for li := range s.lines {
				s.lines[li] = line{}
			}
		}
	}
}

package cache

import (
	"testing"
	"testing/quick"

	"coma/internal/config"
)

func newCache() *Cache { return New(config.KSR1(16)) }

func TestMissThenHit(t *testing.T) {
	c := newCache()
	if _, hit := c.Access(0x1000, false, 0, 1); hit {
		t.Fatal("cold read hit")
	}
	c.Fill(0x1000, false, 7, 1)
	v, hit := c.Access(0x1000, false, 0, 2)
	if !hit || v != 7 {
		t.Fatalf("hit=%v v=%d, want hit with 7", hit, v)
	}
	st := c.Stats()
	if st.ReadMisses != 1 || st.ReadHits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSectoredFill(t *testing.T) {
	c := newCache()
	c.Fill(0x1000, false, 1, 1)
	// Same sector (2KB), different line: still a miss — sectored caches
	// validate lines individually.
	if _, hit := c.Access(0x1040, false, 0, 2); hit {
		t.Fatal("unfilled line in a present sector hit")
	}
	c.Fill(0x1040, false, 2, 2)
	if _, hit := c.Access(0x1040, false, 0, 3); !hit {
		t.Fatal("filled line missed")
	}
}

func TestWriteRequiresWritable(t *testing.T) {
	c := newCache()
	c.Fill(0x2000, false, 5, 1) // read-only fill
	if _, ok := c.Access(0x2000, true, 9, 2); ok {
		t.Fatal("write to read-only line succeeded")
	}
	st := c.Stats()
	if st.UpgradeMisses != 1 || st.WriteMisses != 1 {
		t.Fatalf("stats = %+v, want upgrade miss counted", st)
	}
	c.Fill(0x2000, true, 5, 3)
	if _, ok := c.Access(0x2000, true, 9, 4); !ok {
		t.Fatal("write to writable line missed")
	}
	if v, _ := c.Access(0x2000, false, 0, 5); v != 9 {
		t.Fatalf("read back %d, want 9", v)
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	arch := config.KSR1(16)
	c := New(arch)
	sectorSize := uint64(arch.CacheLineSize * arch.CacheSectors)
	numSets := uint64(arch.CacheSize/(arch.CacheLineSize*arch.CacheSectors)) / uint64(arch.CacheWays)
	// Fill ways+1 sectors mapping to set 0; the LRU one must be evicted.
	stride := sectorSize * numSets
	for i := 0; i <= arch.CacheWays; i++ {
		c.Fill(uint64(i)*stride, false, uint64(i), int64(i+1))
	}
	if c.Contains(0) {
		t.Fatal("LRU sector (first filled) survived eviction")
	}
	if !c.Contains(stride) {
		t.Fatal("second sector was wrongly evicted")
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
}

func TestEvictionWritesBackDirtyLines(t *testing.T) {
	arch := config.KSR1(16)
	c := New(arch)
	sectorSize := uint64(arch.CacheLineSize * arch.CacheSectors)
	numSets := uint64(arch.CacheSize/(arch.CacheLineSize*arch.CacheSectors)) / uint64(arch.CacheWays)
	stride := sectorSize * numSets
	c.Fill(0, true, 1, 1)
	if _, ok := c.Access(0, true, 42, 2); !ok {
		t.Fatal("write missed")
	}
	var wbs []Writeback
	for i := 1; i <= arch.CacheWays; i++ {
		wbs = append(wbs, c.Fill(uint64(i)*stride, false, 0, int64(i+10))...)
	}
	if len(wbs) != 1 {
		t.Fatalf("writebacks = %v, want exactly the dirty line", wbs)
	}
	if wbs[0].Addr != 0 || wbs[0].Value != 42 {
		t.Fatalf("writeback = %+v", wbs[0])
	}
}

func TestInvalidateItemDropsBothLines(t *testing.T) {
	c := newCache()
	// One 128-byte item covers two 64-byte lines.
	c.Fill(0x4000, false, 1, 1)
	c.Fill(0x4040, false, 2, 1)
	if n := c.InvalidateItem(0x4000); n != 2 {
		t.Fatalf("invalidated %d lines, want 2", n)
	}
	if c.Contains(0x4000) || c.Contains(0x4040) {
		t.Fatal("lines survived invalidation")
	}
}

func TestDowngradeKeepsDataReadable(t *testing.T) {
	c := newCache()
	c.Fill(0x4000, true, 3, 1)
	c.Access(0x4000, true, 9, 2)
	c.DowngradeItem(0x4000)
	v, hit := c.Access(0x4000, false, 0, 3)
	if !hit || v != 9 {
		t.Fatalf("downgraded line read = (%d,%v), want (9,true)", v, hit)
	}
	if c.Writable(0x4000) {
		t.Fatal("downgraded line still writable")
	}
	if c.DirtyLines() != 0 {
		t.Fatal("downgraded line still dirty")
	}
}

func TestItemDirtyValue(t *testing.T) {
	c := newCache()
	if _, ok := c.ItemDirtyValue(0x4000); ok {
		t.Fatal("empty cache reported dirty value")
	}
	c.Fill(0x4040, true, 3, 1) // second line of item at 0x4000
	c.Access(0x4040, true, 77, 2)
	v, ok := c.ItemDirtyValue(0x4000)
	if !ok || v != 77 {
		t.Fatalf("dirty value = (%d,%v), want (77,true)", v, ok)
	}
}

func TestFlushDirty(t *testing.T) {
	c := newCache()
	c.Fill(0x1000, true, 0, 1)
	c.Fill(0x2000, true, 0, 1)
	c.Access(0x1000, true, 11, 2)
	c.Access(0x2000, true, 22, 2)
	flushed := map[uint64]uint64{}
	n := c.FlushDirty(func(addr, v uint64) { flushed[addr] = v })
	if n != 2 {
		t.Fatalf("flushed %d lines, want 2", n)
	}
	if flushed[0x1000] != 11 || flushed[0x2000] != 22 {
		t.Fatalf("flushed = %v", flushed)
	}
	if c.DirtyLines() != 0 {
		t.Fatal("dirty lines remain after flush")
	}
	// Paper §4.2.3: flushed data stays readable in the cache.
	if v, hit := c.Access(0x1000, false, 0, 3); !hit || v != 11 {
		t.Fatalf("flushed line read = (%d,%v)", v, hit)
	}
	// But a new write needs a coherence transaction.
	if _, ok := c.Access(0x1000, true, 33, 4); ok {
		t.Fatal("write to flushed line succeeded without upgrade")
	}
}

func TestInvalidateAll(t *testing.T) {
	c := newCache()
	for i := 0; i < 10; i++ {
		c.Fill(uint64(i)*0x1000, true, uint64(i), int64(i))
	}
	c.InvalidateAll()
	for i := 0; i < 10; i++ {
		if c.Contains(uint64(i) * 0x1000) {
			t.Fatalf("line %d survived InvalidateAll", i)
		}
	}
}

func TestMissRate(t *testing.T) {
	c := newCache()
	c.Access(0, false, 0, 1) // miss
	c.Fill(0, false, 0, 1)
	c.Access(0, false, 0, 2) // hit
	c.Access(0, false, 0, 3) // hit
	c.Access(64, false, 0, 4)
	got := c.Stats().MissRate()
	if got != 0.5 {
		t.Fatalf("miss rate = %v, want 0.5", got)
	}
}

// Property: after Fill(addr), Access(addr) hits and returns the filled
// value, regardless of the fill history before it.
func TestFillThenHitProperty(t *testing.T) {
	arch := config.KSR1(16)
	f := func(addrs []uint32, final uint32) bool {
		c := New(arch)
		now := int64(0)
		for _, a := range addrs {
			now++
			c.Fill(uint64(a)&^63, false, uint64(a), now)
		}
		target := uint64(final) &^ 63
		now++
		c.Fill(target, false, 12345, now)
		v, hit := c.Access(target, false, 0, now+1)
		return hit && v == 12345
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

package cache

import (
	"testing"

	"coma/internal/config"
)

func BenchmarkAccessHit(b *testing.B) {
	c := New(config.KSR1(16))
	c.Fill(0x1000, true, 7, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false, 0, int64(i))
	}
}

func BenchmarkFillEvict(b *testing.B) {
	arch := config.KSR1(16)
	c := New(arch)
	stride := uint64(arch.CacheLineSize * arch.CacheSectors * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fill(uint64(i)*stride, false, 0, int64(i))
	}
}

package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := New()
	var got []int
	e.At(10, func() { got = append(got, 1) })
	e.At(5, func() { got = append(got, 0) })
	e.At(10, func() { got = append(got, 2) }) // same time: schedule order
	e.At(20, func() { got = append(got, 3) })
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 {
		t.Fatalf("end time = %d, want 20", end)
	}
	want := []int{0, 1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestAfterAndNow(t *testing.T) {
	e := New()
	var at int64 = -1
	e.After(7, func() { at = e.Now() })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7 {
		t.Fatalf("event ran at %d, want 7", at)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := New()
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntil(t *testing.T) {
	e := New()
	fired := 0
	e.At(10, func() { fired++ })
	e.At(20, func() { fired++ })
	e.At(30, func() { fired++ })
	end, err := e.RunUntil(20)
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 {
		t.Fatalf("end = %d, want 20", end)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (events at exactly the limit fire)", fired)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired = %d after resume, want 3", fired)
	}
}

func TestStop(t *testing.T) {
	e := New()
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
}

func TestHeapManyEvents(t *testing.T) {
	e := New()
	r := NewRNG(42)
	const n = 5000
	times := make([]int64, n)
	for i := range times {
		times[i] = r.Int63n(1000)
	}
	var prev int64 = -1
	count := 0
	for _, ti := range times {
		ti := ti
		e.At(ti, func() {
			if ti < prev {
				t.Fatalf("event at %d fired after %d", ti, prev)
			}
			prev = ti
			count++
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("dispatched %d, want %d", count, n)
	}
	if e.Events() != n {
		t.Fatalf("Events() = %d, want %d", e.Events(), n)
	}
}

// TestSameCycleScheduleOrder pins the fast-path contract: events
// scheduled for the current cycle while the engine is running (they take
// the nowq FIFO, not the heap) still interleave with already-queued
// events at that cycle in strict schedule order.
func TestSameCycleScheduleOrder(t *testing.T) {
	e := New()
	var got []string
	e.At(10, func() {
		got = append(got, "a")
		e.At(10, func() { // same cycle, scheduled during dispatch
			got = append(got, "c")
			e.At(10, func() { got = append(got, "e") })
		})
	})
	e.At(10, func() { // pre-queued at the same cycle: fires before "c"
		got = append(got, "b")
		e.At(10, func() { got = append(got, "d") })
	})
	e.At(11, func() { got = append(got, "f") }) // later cycle: last
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := "abcdef"
	if s := joinStrings(got); s != want {
		t.Fatalf("dispatch order %q, want %q", s, want)
	}
}

func joinStrings(ss []string) string {
	out := ""
	for _, s := range ss {
		out += s
	}
	return out
}

// TestSameCycleWakeInterleavesWithEvents checks that a Wait(0) wake (the
// allocation-free proc event on the fast path) keeps schedule order
// against plain callbacks at the same cycle.
func TestSameCycleWakeInterleavesWithEvents(t *testing.T) {
	e := New()
	var got []string
	e.Spawn("p", func(p *Process) {
		p.Wait(5)
		got = append(got, "wake1")
		p.Wait(0) // yields; the callback scheduled below at 5 runs first
		got = append(got, "wake2")
	})
	e.At(5, func() { got = append(got, "cb") })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// The process spawns at 0 and parks; its time-5 wake was scheduled at
	// spawn+wait time (seq before the At above? No: Spawn schedules at 0,
	// the process runs and schedules its wake only during Run). Order:
	// cb was scheduled before Run, the wake during it, so cb fires first.
	want := "cb,wake1,wake2"
	if s := joinComma(got); s != want {
		t.Fatalf("order %q, want %q", s, want)
	}
	if e.Now() != 5 {
		t.Fatalf("now = %d, want 5", e.Now())
	}
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// TestRunUntilWithSameCycleEvents checks that events spawned for the
// current cycle at exactly the limit still fire before RunUntil returns.
func TestRunUntilWithSameCycleEvents(t *testing.T) {
	e := New()
	fired := 0
	e.At(20, func() {
		fired++
		e.At(20, func() { fired++ }) // same-cycle, at the limit
	})
	e.At(30, func() { fired++ })
	end, err := e.RunUntil(20)
	if err != nil {
		t.Fatal(err)
	}
	if end != 20 || fired != 2 {
		t.Fatalf("end = %d fired = %d, want 20 and 2", end, fired)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("fired = %d after resume, want 3", fired)
	}
}

// TestStopLeavesSameCycleEventsResumable: Stop during a burst of
// same-cycle events must not lose the pending ones; a later Run resumes
// them in order.
func TestStopLeavesSameCycleEventsResumable(t *testing.T) {
	e := New()
	var got []int
	e.At(5, func() {
		got = append(got, 1)
		e.At(5, func() { got = append(got, 2) })
		e.At(5, func() { got = append(got, 3) })
		e.Stop()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("fired %v before stop, want just the stopper", got)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("resumed order %v, want [1 2 3]", got)
	}
}

func TestProcessWait(t *testing.T) {
	e := New()
	var trace []int64
	e.Spawn("walker", func(p *Process) {
		for i := 0; i < 3; i++ {
			p.Wait(10)
			trace = append(trace, p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 20, 30}
	if len(trace) != len(want) {
		t.Fatalf("trace %v, want %v", trace, want)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace %v, want %v", trace, want)
		}
	}
	if e.Processes() != 0 {
		t.Fatalf("live processes = %d, want 0", e.Processes())
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := New()
		var order []string
		for _, d := range []struct {
			name string
			step int64
		}{{"a", 3}, {"b", 5}, {"c", 7}} {
			d := d
			e.Spawn(d.name, func(p *Process) {
				for i := 0; i < 4; i++ {
					p.Wait(d.step)
					order = append(order, d.name)
				}
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	for i := 0; i < 5; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatalf("run %d: length %d != %d", i, len(again), len(first))
		}
		for j := range first {
			if again[j] != first[j] {
				t.Fatalf("run %d: order diverged at %d: %v vs %v", i, j, again, first)
			}
		}
	}
}

func TestWaitUntil(t *testing.T) {
	e := New()
	var at int64
	e.Spawn("p", func(p *Process) {
		p.WaitUntil(15)
		p.WaitUntil(10) // already past: no-op
		at = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 15 {
		t.Fatalf("at = %d, want 15", at)
	}
}

func TestShutdownKillsParkedProcesses(t *testing.T) {
	e := New()
	f := NewFuture[int]()
	cleaned := false
	e.Spawn("stuck", func(p *Process) {
		defer func() { cleaned = true }()
		f.Await(p) // never completed
		t.Error("process resumed past an incomplete future")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Processes() != 1 {
		t.Fatalf("live processes = %d, want 1 (parked)", e.Processes())
	}
	e.Shutdown()
	if e.Processes() != 0 {
		t.Fatalf("live processes after shutdown = %d, want 0", e.Processes())
	}
	if !cleaned {
		t.Error("deferred cleanup did not run on kill")
	}
}

func TestShutdownManyProcesses(t *testing.T) {
	e := New()
	g := NewGate()
	for i := 0; i < 50; i++ {
		e.Spawn("w", func(p *Process) { g.Wait(p); p.Wait(1e18) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if e.Processes() != 0 {
		t.Fatalf("live processes = %d, want 0", e.Processes())
	}
}

func TestNestedRunRejected(t *testing.T) {
	e := New()
	var nested error
	e.At(1, func() { _, nested = e.Run() })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if nested != ErrNested {
		t.Fatalf("nested Run error = %v, want ErrNested", nested)
	}
}

package sim

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64-seeded xorshift64*). Every stochastic choice in the
// simulator draws from an RNG derived from the run seed so that runs are
// reproducible across platforms and Go versions (unlike math/rand, whose
// algorithms have changed between releases).
type RNG struct{ s uint64 }

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the generator to the deterministic state for seed.
func (r *RNG) Reseed(seed uint64) {
	// splitmix64 step: avoids weak all-zero / small-seed states.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.s = z
}

// State returns the full generator state (for snapshot/rollback).
func (r *RNG) State() uint64 { return r.s }

// Restore sets the generator state to a value previously returned by
// State.
func (r *RNG) Restore(state uint64) {
	if state == 0 {
		panic("sim: restoring zero RNG state")
	}
	r.s = state
}

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	x := r.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.s = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive bound")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Derive returns a new generator whose stream is a deterministic function
// of this generator's seed and the given stream label, without consuming
// state from the parent. Use it to give each node/process an independent
// stream.
func (r *RNG) Derive(label uint64) *RNG {
	return NewRNG(r.s ^ (label+1)*0x9e3779b97f4a7c15)
}

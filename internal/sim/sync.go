package sim

import "fmt"

// Future is a one-shot completion carrying a value of type T. Processes
// Await it; any number may wait; Complete wakes them all at the current
// simulated time. Completing twice is a programming error.
type Future[T any] struct {
	done    bool
	val     T
	waiters []*Process
}

// NewFuture returns an incomplete future.
func NewFuture[T any]() *Future[T] { return &Future[T]{} }

// Done reports whether the future has been completed.
func (f *Future[T]) Done() bool { return f.done }

// Value returns the completed value; it panics if the future is not done.
func (f *Future[T]) Value() T {
	if !f.done {
		panic("sim: Value on incomplete future")
	}
	return f.val
}

// Complete resolves the future with v and wakes all waiters.
func (f *Future[T]) Complete(e *Engine, v T) {
	if f.done {
		panic("sim: future completed twice")
	}
	f.done = true
	f.val = v
	for _, p := range f.waiters {
		e.wakeNow(p)
	}
	f.waiters = nil
}

// Await blocks p until the future completes and returns its value.
func (f *Future[T]) Await(p *Process) T {
	if f.done {
		return f.val
	}
	f.waiters = append(f.waiters, p)
	p.park()
	if !f.done {
		panic("sim: process woken before future completion")
	}
	return f.val
}

// Resource is a multi-server FIFO resource (for example the four
// independent AM controllers of a node, or a network interface). Acquire
// blocks when all servers are busy; Release hands the server to the
// longest-waiting process.
type Resource struct {
	name     string
	capacity int
	inUse    int
	waiters  []*Process

	// Busy-time accounting for utilisation statistics.
	busyCycles int64
	lastChange int64
}

// NewResource returns a resource with the given number of servers.
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{name: name, capacity: capacity}
}

// Acquire blocks p until a server is free, then claims it.
func (r *Resource) Acquire(p *Process) {
	e := p.eng
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.account(e)
		r.inUse++
		return
	}
	r.waiters = append(r.waiters, p)
	p.park()
	// The releasing side transferred the server to us (inUse unchanged).
}

// TryAcquire claims a server if one is immediately free, without blocking.
func (r *Resource) TryAcquire(e *Engine) bool {
	if r.inUse < r.capacity && len(r.waiters) == 0 {
		r.account(e)
		r.inUse++
		return true
	}
	return false
}

// Release frees one server, handing it directly to the longest waiter if
// any. It panics if the resource is not held.
func (r *Resource) Release(e *Engine) {
	if r.inUse == 0 {
		panic(fmt.Sprintf("sim: release of idle resource %q", r.name))
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		copy(r.waiters, r.waiters[1:])
		r.waiters = r.waiters[:len(r.waiters)-1]
		e.wakeNow(next) // server stays in use, transferred to next
		return
	}
	r.account(e)
	r.inUse--
}

// Use is the common acquire-hold-release pattern: claim a server, hold it
// for d cycles of service, release it.
func (r *Resource) Use(p *Process, d int64) {
	r.Acquire(p)
	p.Wait(d)
	r.Release(p.eng)
}

// InUse returns the number of busy servers.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of blocked acquirers.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// BusyCycles returns the integral of busy servers over time, in
// server-cycles, up to the current engine time.
func (r *Resource) BusyCycles(e *Engine) int64 {
	return r.busyCycles + int64(r.inUse)*(e.now-r.lastChange)
}

func (r *Resource) account(e *Engine) {
	r.busyCycles += int64(r.inUse) * (e.now - r.lastChange)
	r.lastChange = e.now
}

// Barrier synchronises a fixed group of processes: each calls Arrive and
// blocks until all n have arrived, then all resume and the barrier resets
// for the next round.
type Barrier struct {
	n       int
	arrived int
	waiters []*Process
	rounds  int64
}

// NewBarrier returns a barrier for n participants.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	return &Barrier{n: n}
}

// Resize changes the participant count (used when a node fails
// permanently). It panics if more processes are already waiting than the
// new size allows.
func (b *Barrier) Resize(e *Engine, n int) {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	b.n = n
	b.maybeOpen(e)
}

// Rounds returns the number of completed barrier episodes.
func (b *Barrier) Rounds() int64 { return b.rounds }

// Waiting returns the number of currently blocked participants.
func (b *Barrier) Waiting() int { return b.arrived }

// Arrive blocks p until all participants have arrived. It returns true for
// the participant that completed the round (the last arriver).
func (b *Barrier) Arrive(p *Process) bool {
	b.arrived++
	if b.arrived >= b.n {
		b.open(p.eng)
		return true
	}
	b.waiters = append(b.waiters, p)
	p.park()
	return false
}

func (b *Barrier) maybeOpen(e *Engine) {
	if b.arrived >= b.n && b.arrived > 0 {
		b.open(e)
	}
}

func (b *Barrier) open(e *Engine) {
	for _, w := range b.waiters {
		e.wakeNow(w)
	}
	b.waiters = nil
	b.arrived = 0
	b.rounds++
}

// Gate is a broadcast condition: processes Wait on it; Open wakes them all.
// Unlike a Future it can be reused (Close re-arms it).
type Gate struct {
	open    bool
	waiters []*Process
}

// NewGate returns a closed gate.
func NewGate() *Gate { return &Gate{} }

// IsOpen reports whether the gate is currently open.
func (g *Gate) IsOpen() bool { return g.open }

// Open releases all waiting processes and lets subsequent Wait calls pass
// through immediately.
func (g *Gate) Open(e *Engine) {
	g.open = true
	for _, w := range g.waiters {
		e.wakeNow(w)
	}
	g.waiters = nil
}

// Close re-arms the gate.
func (g *Gate) Close() { g.open = false }

// Wait blocks p until the gate is open.
func (g *Gate) Wait(p *Process) {
	if g.open {
		return
	}
	g.waiters = append(g.waiters, p)
	p.park()
}

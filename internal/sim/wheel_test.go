package sim

import (
	"slices"
	"testing"
)

// refQueue is a deliberately naive priority queue ordered by (time, seq):
// the reference model the timing wheel must match event for event.
type refQueue struct{ a []event }

func (r *refQueue) len() int { return len(r.a) }

func (r *refQueue) push(ev event) { r.a = append(r.a, ev) }

func (r *refQueue) pop() event {
	best := 0
	for i := 1; i < len(r.a); i++ {
		if r.a[i].time < r.a[best].time ||
			(r.a[i].time == r.a[best].time && r.a[i].seq < r.a[best].seq) {
			best = i
		}
	}
	ev := r.a[best]
	r.a = append(r.a[:best], r.a[best+1:]...)
	return ev
}

// TestWheelMatchesReference drives the timing wheel and the reference
// queue with identical random interleaved push/pop schedules — spanning
// same-cycle bursts, window-edge times and far-future overflow — and
// requires bit-identical (time, seq) pop sequences.
func TestWheelMatchesReference(t *testing.T) {
	for seed := uint64(1); seed <= 40; seed++ {
		r := NewRNG(seed)
		var q eventQueue
		var ref refQueue
		var now, seq int64
		for op := 0; op < 4000; op++ {
			if q.len() != ref.len() {
				t.Fatalf("seed %d: len mismatch wheel=%d ref=%d", seed, q.len(), ref.len())
			}
			if q.len() == 0 || r.Int63n(2) == 0 {
				for n := 1 + r.Int63n(4); n > 0; n-- {
					var span int64
					switch r.Int63n(4) {
					case 0:
						span = 1 // same cycle / next cycle
					case 1:
						span = 8 // hot near-future traffic
					case 2:
						span = wheelSize + 2 // straddles the window edge
					default:
						span = wheelSize * 64 // deep overflow
					}
					seq++
					ev := event{time: now + r.Int63n(span), seq: seq}
					q.push(ev)
					ref.push(ev)
				}
				continue
			}
			got, want := q.pop(), ref.pop()
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("seed %d op %d: wheel popped (t=%d, seq=%d), reference (t=%d, seq=%d)",
					seed, op, got.time, got.seq, want.time, want.seq)
			}
			now = got.time
		}
		for q.len() > 0 {
			got, want := q.pop(), ref.pop()
			if got.time != want.time || got.seq != want.seq {
				t.Fatalf("seed %d drain: wheel popped (t=%d, seq=%d), reference (t=%d, seq=%d)",
					seed, got.time, got.seq, want.time, want.seq)
			}
		}
		if ref.len() != 0 {
			t.Fatalf("seed %d: reference still has %d events", seed, ref.len())
		}
	}
}

// TestWheelOverflowMigration pins the overflow invariant directly: an
// event parked in the far-future heap migrates into its slot the moment
// the window slides over it, and a later direct insert at the same time
// still dispatches after it (the migrated event has the older seq).
func TestWheelOverflowMigration(t *testing.T) {
	var q eventQueue
	q.push(event{time: wheelSize + 10, seq: 1}) // beyond the window: overflow
	if q.overflow.len() != 1 {
		t.Fatalf("far event not in overflow (len=%d)", q.overflow.len())
	}
	q.push(event{time: 11, seq: 2})
	if ev := q.pop(); ev.seq != 2 {
		t.Fatalf("popped seq %d, want the near event (seq 2)", ev.seq)
	}
	// base is now 11, so wheelSize+10 is inside the window: it must have
	// migrated out of the heap before any same-time direct insert.
	if q.overflow.len() != 0 {
		t.Fatalf("overflow event did not migrate on window advance")
	}
	q.push(event{time: wheelSize + 10, seq: 3}) // same time, direct insert
	if ev := q.pop(); ev.seq != 1 {
		t.Fatalf("popped seq %d first, want migrated overflow event (seq 1)", ev.seq)
	}
	if ev := q.pop(); ev.seq != 3 {
		t.Fatalf("popped seq %d second, want direct insert (seq 3)", ev.seq)
	}
	if q.len() != 0 {
		t.Fatalf("queue not empty after draining")
	}
}

// TestWheelEmptyWindowJump covers the pop path where the wheel is empty
// and base must jump straight to the overflow front.
func TestWheelEmptyWindowJump(t *testing.T) {
	var q eventQueue
	times := []int64{wheelSize * 5, wheelSize * 3, wheelSize*5 + 1, wheelSize * 9}
	for i, tm := range times {
		q.push(event{time: tm, seq: int64(i + 1)})
	}
	want := slices.Clone(times)
	slices.Sort(want)
	for i, w := range want {
		if ev := q.pop(); ev.time != w {
			t.Fatalf("pop %d: time %d, want %d", i, ev.time, w)
		}
	}
}

// TestEngineRandomScheduleOrder exercises the full kernel dispatch loop
// against a shadow model: every At call is mirrored with its (time, seq)
// into a list, callbacks schedule children mid-dispatch (same cycle,
// near-future, far-future), runs proceed in random RunUntil chunks with
// occasional Stop calls, and the observed dispatch order must equal the
// shadow list sorted by (time, seq).
func TestEngineRandomScheduleOrder(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		r := NewRNG(seed)
		e := New()
		type item struct {
			time int64
			seq  int64
			id   int
		}
		var want []item
		var got []int
		var shadowSeq int64
		var add func(at int64)
		add = func(at int64) {
			id := len(want)
			shadowSeq++ // every At consumes exactly one engine seq
			want = append(want, item{time: at, seq: shadowSeq, id: id})
			e.At(at, func() {
				got = append(got, id)
				if len(want) >= 3000 {
					return
				}
				for n := r.Int63n(3); n > 0; n-- {
					switch r.Int63n(4) {
					case 0:
						add(e.Now()) // same-cycle insert mid-dispatch
					case 1:
						add(e.Now() + 1 + r.Int63n(16))
					case 2:
						add(e.Now() + 1 + r.Int63n(wheelSize))
					default:
						add(e.Now() + wheelSize + r.Int63n(1<<20))
					}
				}
				if r.Int63n(40) == 0 {
					e.Stop()
				}
			})
		}
		for i := 0; i < 40; i++ {
			add(r.Int63n(1 << 14))
		}
		for rounds := 0; len(got) < len(want); rounds++ {
			if rounds > 10_000 {
				t.Fatalf("seed %d: engine failed to drain (%d/%d dispatched)", seed, len(got), len(want))
			}
			if _, err := e.RunUntil(e.Now() + r.Int63n(1<<16)); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		order := slices.Clone(want)
		slices.SortFunc(order, func(a, b item) int {
			if a.time != b.time {
				return int(a.time - b.time)
			}
			return int(a.seq - b.seq)
		})
		for i, it := range order {
			if got[i] != it.id {
				t.Fatalf("seed %d: dispatch %d was event %d, want %d (t=%d seq=%d)",
					seed, i, got[i], it.id, it.time, it.seq)
			}
		}
	}
}

// TestShutdownKillsInSpawnOrder is the regression test for the Shutdown
// rewrite: processes must observe the kill in ascending process-id
// (spawn) order, and the unwind must reap every goroutine.
func TestShutdownKillsInSpawnOrder(t *testing.T) {
	e := New()
	const n = 150
	var order []int
	for i := 0; i < n; i++ {
		i := i
		e.Spawn("parked", func(p *Process) {
			defer func() { order = append(order, i) }()
			p.Park() // parked forever; only Shutdown wakes it
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	e.Shutdown()
	if len(order) != n {
		t.Fatalf("reaped %d processes, want %d", len(order), n)
	}
	for i, id := range order {
		if id != i {
			t.Fatalf("kill %d hit process %d; want ascending spawn order", i, id)
		}
	}
	if e.Processes() != 0 {
		t.Fatalf("%d processes still live after Shutdown", e.Processes())
	}
}

package sim

import "math/bits"

// The event queue is a single-level hierarchical timing wheel (a
// calendar queue): wheelSize one-cycle slots cover the near-future
// window [base, base+wheelSize), and events beyond it spill into a small
// binary min-heap. Nearly all simulator traffic — mesh hops, controller
// service times, process wakes — lands within a few hundred cycles of
// now, so the common schedule/dispatch pair is O(1) slot append and
// bitmap scan instead of an O(log n) heap walk; only the rare far-future
// timers (checkpoint intervals, scripted failures) pay for the heap.
//
// Ordering contract (identical to the heap it replaced): events dispatch
// in (time, seq) order. Within the window each slot maps to exactly one
// absolute time, sequence numbers are globally monotonic, and overflow
// events migrate into the wheel in heap order whenever base advances —
// before any younger event can be scheduled into the freed slots — so
// every slot is a FIFO already sorted by seq.
const (
	wheelBits = 10
	wheelSize = 1 << wheelBits // cycles covered by the wheel window
	wheelMask = wheelSize - 1
)

// eventQueue is the engine's pending-event store: timing wheel plus
// overflow heap. The zero value is ready to use with base zero.
type eventQueue struct {
	base  int64 // window start; all wheel events have base <= time < base+wheelSize
	count int   // events resident in wheel slots

	// slots[s] holds the pending events for absolute time t where
	// s == t & wheelMask; heads[s] indexes the next undispatched entry
	// (the backing array is reused once drained). occupied is a bitmap of
	// non-empty slots for O(words) next-event scans.
	slots    [wheelSize][]event
	heads    [wheelSize]int
	occupied [wheelSize / 64]uint64

	overflow eventHeap // events at time >= base+wheelSize
}

func (q *eventQueue) len() int { return q.count + q.overflow.len() }

// stats reports the event population by residence: wheel slots vs the
// far-future overflow heap. Read-only.
func (q *eventQueue) stats() (wheel, overflow int) { return q.count, q.overflow.len() }

// push files one event. The caller guarantees ev.time >= base (the
// engine never schedules into the past).
func (q *eventQueue) push(ev event) {
	if ev.time-q.base < wheelSize {
		q.pushSlot(ev)
		return
	}
	q.overflow.push(ev)
}

func (q *eventQueue) pushSlot(ev event) {
	s := int(ev.time & wheelMask)
	q.slots[s] = append(q.slots[s], ev)
	q.occupied[s>>6] |= 1 << uint(s&63)
	q.count++
}

// peek returns the earliest pending event without removing it, or nil if
// the queue is empty. When only overflow events remain the heap top is
// returned as-is; pop performs the window advance.
func (q *eventQueue) peek() *event {
	if q.count > 0 {
		s := q.nextSlot()
		return &q.slots[s][q.heads[s]]
	}
	if q.overflow.len() > 0 {
		return q.overflow.peek()
	}
	return nil
}

// pop removes and returns the earliest pending event. The caller must
// know the queue is non-empty.
func (q *eventQueue) pop() event {
	if q.count == 0 {
		// Nothing left inside the window: jump base to the overflow
		// front, which migrates every event in the new window into slots.
		q.advanceTo(q.overflow.peek().time)
	}
	s := q.nextSlot()
	h := q.heads[s]
	ev := q.slots[s][h]
	q.slots[s][h] = event{} // release fn/proc/sink for the GC
	h++
	if h == len(q.slots[s]) {
		q.slots[s] = q.slots[s][:0] // drained: reuse the backing array
		q.heads[s] = 0
		q.occupied[s>>6] &^= 1 << uint(s&63)
	} else {
		q.heads[s] = h
	}
	q.count--
	// Track dispatch: sliding the window over the popped time pulls any
	// overflow events that just came into range.
	q.advanceTo(ev.time)
	return ev
}

// advanceTo slides the window start forward to t and migrates overflow
// events that now fall inside [t, t+wheelSize). All wheel slots between
// the old and new base are empty (t is never beyond the earliest pending
// event), so slot-to-time mapping stays unique.
func (q *eventQueue) advanceTo(t int64) {
	if t <= q.base {
		return
	}
	q.base = t
	end := t + wheelSize
	for q.overflow.len() > 0 && q.overflow.peek().time < end {
		q.pushSlot(q.overflow.pop())
	}
}

// nextSlot returns the slot index of the earliest wheel event by
// scanning the occupancy bitmap circularly from the base slot. The
// caller guarantees count > 0; within the window, circular distance from
// base equals time order.
func (q *eventQueue) nextSlot() int {
	start := int(q.base & wheelMask)
	w := start >> 6
	// Partial first word: bits at and above the base slot.
	if word := q.occupied[w] &^ (1<<uint(start&63) - 1); word != 0 {
		return w<<6 + bits.TrailingZeros64(word)
	}
	for i := 1; i <= len(q.occupied); i++ {
		w2 := (w + i) & (len(q.occupied) - 1)
		if word := q.occupied[w2]; word != 0 {
			s := w2<<6 + bits.TrailingZeros64(word)
			if w2 == w {
				// Wrapped all the way around: only bits below base remain.
				s = w<<6 + bits.TrailingZeros64(word&(1<<uint(start&63)-1))
			}
			return s
		}
	}
	panic("sim: nextSlot on empty wheel")
}

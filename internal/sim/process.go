package sim

import "fmt"

// killedSignal is the panic value used to unwind a process terminated by
// Engine.Shutdown. It never escapes the process wrapper.
type killedSignal struct{}

// Process is a lightweight simulated process: a goroutine that runs only
// while the engine has handed it control, and that blocks on simulated
// time (Wait), futures (Await), resources (Acquire) and barriers.
type Process struct {
	eng    *Engine
	id     int
	name   string
	wake   chan struct{}
	killed bool
}

// Spawn starts fn as a new process at the current simulated time. The name
// is used in diagnostics only. fn receives the Process handle it must use
// for all blocking operations.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	e.nextPID++
	p := &Process{
		eng:  e,
		id:   e.nextPID,
		name: name,
		wake: make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	e.After(0, func() {
		go p.top(fn)
		<-e.yield
	})
	return p
}

// top is the outermost frame of the process goroutine. It guarantees the
// engine always gets its yield back, whether fn returns, is killed, or
// panics (a real panic is re-raised after the handshake so the program
// crashes loudly rather than deadlocking).
func (p *Process) top(fn func(*Process)) {
	var crash any
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedSignal); !ok {
					crash = r
				}
			}
		}()
		fn(p)
	}()
	delete(p.eng.procs, p)
	if crash != nil {
		// Re-panic on this goroutine: the process misbehaved and the
		// whole simulation is undefined. Yield first so the engine
		// goroutine is not left blocked when the runtime unwinds.
		p.eng.yield <- struct{}{}
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, crash))
	}
	p.eng.yield <- struct{}{}
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Process) Now() int64 { return p.eng.now }

// park hands control back to the engine and blocks until something wakes
// this process. Every blocking primitive funnels through here.
func (p *Process) park() {
	p.eng.yield <- struct{}{}
	<-p.wake
	if p.killed {
		panic(killedSignal{})
	}
}

// Park blocks the process until another component wakes it with
// Engine.WakeNow. It is the escape hatch for building synchronisation
// primitives outside this package (for example the coherence engine's
// per-item transaction locks); prefer Wait/Await/Acquire where they fit.
func (p *Process) Park() { p.park() }

// Wait blocks the process for d simulated cycles. Wait(0) yields control
// for the current cycle (other events at the same time may run).
func (p *Process) Wait(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q waiting negative %d", p.name, d))
	}
	e := p.eng
	e.atWake(e.now+d, p)
	p.park()
}

// WaitUntil blocks the process until absolute time t (a no-op if t is not
// in the future).
func (p *Process) WaitUntil(t int64) {
	if t <= p.eng.now {
		return
	}
	p.Wait(t - p.eng.now)
}

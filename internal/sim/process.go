package sim

import "fmt"

// killedSignal is the panic value used to unwind a process terminated by
// Engine.Shutdown. It never escapes the process wrapper.
type killedSignal struct{}

// Process is a lightweight simulated process: a goroutine that runs only
// while it holds the engine's baton, and that blocks on simulated time
// (Wait), futures (Await), resources (Acquire) and barriers.
type Process struct {
	eng    *Engine
	id     int
	name   string
	fn     func(*Process)
	wake   chan struct{}
	killed bool
}

// Spawn starts fn as a new process at the current simulated time. The name
// is used in diagnostics only. fn receives the Process handle it must use
// for all blocking operations.
func (e *Engine) Spawn(name string, fn func(p *Process)) *Process {
	e.nextPID++
	p := &Process{
		eng:  e,
		id:   e.nextPID,
		name: name,
		fn:   fn,
		wake: make(chan struct{}),
	}
	e.procs[p] = struct{}{}
	e.schedule(event{time: e.now, kind: evStart, proc: p})
	return p
}

// top is the outermost frame of the process goroutine, entered holding
// the baton (the evStart dispatcher transferred it by starting this
// goroutine). It guarantees the baton moves on when fn returns, is
// killed, or panics: a finished process keeps dispatching events itself
// until the baton transfers or the run ends, and a real panic is
// re-raised after handing the baton back so the program crashes loudly
// rather than deadlocking.
func (p *Process) top() {
	e := p.eng
	var crash any
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedSignal); !ok {
					crash = r
				}
			}
		}()
		p.fn(p)
	}()
	delete(e.procs, p)
	if crash != nil {
		// Re-panic on this goroutine: the process misbehaved and the
		// whole simulation is undefined. Yield first so the engine
		// goroutine is not left blocked when the runtime unwinds.
		e.yield <- struct{}{}
		panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, crash))
	}
	if e.shutdown {
		// Killed unwind: Shutdown's engine loop owns sequencing.
		e.yield <- struct{}{}
		return
	}
	// Dying holder: keep dispatching on this goroutine until the baton
	// transfers (advHandoff, nothing more to do here) or the run is over
	// (advOver: hand the baton back to the engine blocked in RunUntil).
	// advSelf cannot happen — this process is out of the procs set and
	// can have no pending wake.
	if e.advance(nil) == advOver {
		e.yield <- struct{}{}
	}
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Engine returns the engine this process runs on.
func (p *Process) Engine() *Engine { return p.eng }

// Now returns the current simulated time.
func (p *Process) Now() int64 { return p.eng.now }

// park blocks until something wakes this process. Every blocking
// primitive funnels through here. As the current baton holder the
// process dispatches subsequent events itself: its own wake returns
// without touching a channel, another process's wake is a single direct
// handoff, and only the end of the run involves the engine goroutine.
func (p *Process) park() {
	e := p.eng
	if e.running {
		switch e.advance(p) {
		case advSelf:
			return
		case advOver:
			// Hand the baton back to the engine blocked in RunUntil,
			// then stay parked for a later run.
			e.yield <- struct{}{}
		}
	} else {
		// Outside a run (a killed process unwinding through Shutdown):
		// hand control back to the engine's kill loop.
		e.yield <- struct{}{}
	}
	<-p.wake
	if p.killed {
		panic(killedSignal{})
	}
}

// Park blocks the process until another component wakes it with
// Engine.WakeNow. It is the escape hatch for building synchronisation
// primitives outside this package (for example the coherence engine's
// per-item transaction locks); prefer Wait/Await/Acquire where they fit.
func (p *Process) Park() { p.park() }

// Wait blocks the process for d simulated cycles. Wait(0) yields control
// for the current cycle (other events at the same time may run).
func (p *Process) Wait(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q waiting negative %d", p.name, d))
	}
	e := p.eng
	e.atWake(e.now+d, p)
	p.park()
}

// WaitUntil blocks the process until absolute time t (a no-op if t is not
// in the future).
func (p *Process) WaitUntil(t int64) {
	if t <= p.eng.now {
		return
	}
	p.Wait(t - p.eng.now)
}

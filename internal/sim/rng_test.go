package sim

import "testing"

// TestRNGGolden pins the stream for seed 1. The generator is part of the
// reproducibility contract: runs must replay identically across
// platforms and Go versions, so the algorithm must never change
// silently.
func TestRNGGolden(t *testing.T) {
	want := []uint64{
		0x4b46a55df3611b9b,
		0xd7e1f1410e763ef4,
		0x5f14ec66975f9b06,
		0x3b2c74fad44d6cdb,
	}
	r := NewRNG(1)
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("seed 1 step %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided on %d of 64 draws", same)
	}
}

func TestRNGReseedRestartsStream(t *testing.T) {
	r := NewRNG(7)
	first := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r.Reseed(7)
	for i, w := range first {
		if got := r.Uint64(); got != w {
			t.Fatalf("after Reseed, step %d: got %#x, want %#x", i, got, w)
		}
	}
}

// TestRNGDeriveIsRepeatable: the same label from the same parent state
// must yield the same child stream (per-node streams are reconstructible
// from the run seed alone).
func TestRNGDeriveIsRepeatable(t *testing.T) {
	parent := NewRNG(3)
	c1, c2 := parent.Derive(4), parent.Derive(4)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Derive(4) twice gave different streams at step %d", i)
		}
	}
}

func TestRNGRestoreZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Restore(0) did not panic")
		}
	}()
	NewRNG(1).Restore(0)
}

func TestRNGNonPositiveBoundsPanic(t *testing.T) {
	r := NewRNG(11)
	for _, fn := range []func(){
		func() { r.Intn(0) },
		func() { r.Int63n(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("non-positive bound did not panic")
				}
			}()
			fn()
		}()
	}
}

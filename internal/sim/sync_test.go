package sim

import (
	"testing"
	"testing/quick"
)

func TestFutureCompleteThenAwait(t *testing.T) {
	e := New()
	f := NewFuture[string]()
	var got string
	e.At(5, func() { f.Complete(e, "hello") })
	e.Spawn("late", func(p *Process) {
		p.Wait(10)
		got = f.Await(p) // already done: immediate
		if p.Now() != 10 {
			t.Errorf("await of done future advanced time to %d", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got != "hello" {
		t.Fatalf("got %q", got)
	}
}

func TestFutureWakesAllWaiters(t *testing.T) {
	e := New()
	f := NewFuture[int]()
	woken := 0
	for i := 0; i < 4; i++ {
		e.Spawn("w", func(p *Process) {
			v := f.Await(p)
			if v != 99 {
				t.Errorf("value = %d", v)
			}
			if p.Now() != 7 {
				t.Errorf("woken at %d, want 7", p.Now())
			}
			woken++
		})
	}
	e.At(7, func() { f.Complete(e, 99) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 4 {
		t.Fatalf("woken = %d, want 4", woken)
	}
}

func TestFutureDoubleCompletePanics(t *testing.T) {
	e := New()
	f := NewFuture[int]()
	f.Complete(e, 1)
	defer func() {
		if recover() == nil {
			t.Error("double complete did not panic")
		}
	}()
	f.Complete(e, 2)
}

func TestResourceSerialisesFIFO(t *testing.T) {
	e := New()
	r := NewResource("unit", 1)
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("u", func(p *Process) {
			p.Wait(int64(i)) // stagger arrivals: 0, 1, 2
			r.Acquire(p)
			order = append(order, i)
			p.Wait(10)
			r.Release(e)
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("service order %v, want [0 1 2]", order)
	}
	if e.Now() != 30 {
		t.Fatalf("end = %d, want 30 (fully serialised)", e.Now())
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	e := New()
	r := NewResource("pair", 2)
	for i := 0; i < 4; i++ {
		e.Spawn("u", func(p *Process) { r.Use(p, 10) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 20 {
		t.Fatalf("end = %d, want 20 (two waves of two)", e.Now())
	}
	if got := r.BusyCycles(e); got != 40 {
		t.Fatalf("busy cycles = %d, want 40", got)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := New()
	r := NewResource("t", 1)
	if !r.TryAcquire(e) {
		t.Fatal("TryAcquire on idle resource failed")
	}
	if r.TryAcquire(e) {
		t.Fatal("TryAcquire on busy resource succeeded")
	}
	r.Release(e)
	if !r.TryAcquire(e) {
		t.Fatal("TryAcquire after release failed")
	}
	r.Release(e)
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	e := New()
	r := NewResource("x", 1)
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	r.Release(e)
}

func TestBarrierRounds(t *testing.T) {
	e := New()
	b := NewBarrier(3)
	releases := make([]int64, 0, 6)
	for i := 0; i < 3; i++ {
		i := i
		e.Spawn("b", func(p *Process) {
			for round := 0; round < 2; round++ {
				p.Wait(int64(1 + i + round*100))
				b.Arrive(p)
				releases = append(releases, p.Now())
			}
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if b.Rounds() != 2 {
		t.Fatalf("rounds = %d, want 2", b.Rounds())
	}
	if len(releases) != 6 {
		t.Fatalf("releases = %v", releases)
	}
	// First round completes when the slowest (i=2) arrives at t=3.
	for _, r := range releases[:3] {
		if r != 3 {
			t.Fatalf("first-round release at %d, want 3 (%v)", r, releases)
		}
	}
}

func TestBarrierLastArriverNotBlocked(t *testing.T) {
	e := New()
	b := NewBarrier(2)
	var lastWasCompleter bool
	e.Spawn("first", func(p *Process) {
		b.Arrive(p)
	})
	e.Spawn("second", func(p *Process) {
		p.Wait(5)
		lastWasCompleter = b.Arrive(p)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !lastWasCompleter {
		t.Error("last arriver did not observe completion")
	}
}

func TestBarrierResizeOpensRound(t *testing.T) {
	e := New()
	b := NewBarrier(3)
	done := 0
	for i := 0; i < 2; i++ {
		e.Spawn("b", func(p *Process) {
			b.Arrive(p)
			done++
		})
	}
	// A third participant "dies": shrink the barrier at t=10.
	e.At(10, func() { b.Resize(e, 2) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2 {
		t.Fatalf("done = %d, want 2 after resize released the round", done)
	}
}

func TestGateBroadcastAndReuse(t *testing.T) {
	e := New()
	g := NewGate()
	passed := 0
	for i := 0; i < 3; i++ {
		e.Spawn("g", func(p *Process) {
			g.Wait(p)
			passed++
		})
	}
	e.At(4, func() { g.Open(e) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 3 {
		t.Fatalf("passed = %d, want 3", passed)
	}
	// Re-arm and check an open gate passes immediately.
	g.Close()
	if g.IsOpen() {
		t.Fatal("gate still open after Close")
	}
	g.Open(e)
	e.Spawn("fast", func(p *Process) { g.Wait(p); passed++ })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 4 {
		t.Fatalf("passed = %d, want 4", passed)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(123), NewRNG(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(124)
	same := 0
	a.Reseed(123)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds collided %d/1000 times", same)
	}
}

func TestRNGSnapshotRestore(t *testing.T) {
	r := NewRNG(7)
	r.Uint64()
	s := r.State()
	first := []uint64{r.Uint64(), r.Uint64(), r.Uint64()}
	r.Restore(s)
	for i, want := range first {
		if got := r.Uint64(); got != want {
			t.Fatalf("replay diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGRangesProperty(t *testing.T) {
	check := func(seed uint64, n uint16) bool {
		r := NewRNG(seed)
		bound := int(n%1000) + 1
		for i := 0; i < 50; i++ {
			v := r.Intn(bound)
			if v < 0 || v >= bound {
				return false
			}
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeriveIndependentStreams(t *testing.T) {
	root := NewRNG(99)
	a := root.Derive(0)
	b := root.Derive(1)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams collided %d/1000 times", same)
	}
	// Deriving must not consume parent state.
	c, d := NewRNG(99), NewRNG(99)
	c.Derive(5)
	if c.Uint64() != d.Uint64() {
		t.Fatal("Derive consumed parent state")
	}
}

func TestRNGBoolBias(t *testing.T) {
	r := NewRNG(31337)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if frac < 0.22 || frac > 0.28 {
		t.Fatalf("Bool(0.25) frequency = %.3f", frac)
	}
}

package sim

import "testing"

// TestSafePointDeterministic runs the same workload with and without a
// safe-point hook and asserts the dispatch outcome — final time, event
// count, observed callback order — is identical, and that the hook fires
// once per dispatched event plus the terminal check.
func TestSafePointDeterministic(t *testing.T) {
	workload := func(e *Engine) []int {
		var order []int
		for i := 0; i < 8; i++ {
			i := i
			e.At(int64(10*i), func() { order = append(order, i) })
		}
		e.At(25, func() { order = append(order, 100) })
		e.Spawn("p", func(p *Process) {
			p.Wait(37)
			order = append(order, 200)
			p.Wait(5)
			order = append(order, 201)
		})
		return order
	}

	plain := New()
	orderPlain := workload(plain)
	if _, err := plain.Run(); err != nil {
		t.Fatal(err)
	}

	hooked := New()
	orderHooked := workload(hooked)
	var hookCalls int64
	var lastNow int64 = -1
	hooked.SetSafePointHook(func(now int64) {
		hookCalls++
		if now < lastNow {
			t.Errorf("safe point time went backwards: %d after %d", now, lastNow)
		}
		lastNow = now
		// Reads at a safe point must be legal and must not perturb the run.
		hooked.QueueStats()
		_ = hooked.Now()
		_ = hooked.Events()
	})
	if _, err := hooked.Run(); err != nil {
		t.Fatal(err)
	}

	if plain.Now() != hooked.Now() {
		t.Errorf("final time diverged: plain %d, hooked %d", plain.Now(), hooked.Now())
	}
	if plain.Events() != hooked.Events() {
		t.Errorf("event count diverged: plain %d, hooked %d", plain.Events(), hooked.Events())
	}
	if len(orderPlain) != len(orderHooked) {
		t.Fatalf("callback count diverged: plain %d, hooked %d", len(orderPlain), len(orderHooked))
	}
	for i := range orderPlain {
		if orderPlain[i] != orderHooked[i] {
			t.Errorf("callback order diverged at %d: plain %d, hooked %d",
				i, orderPlain[i], orderHooked[i])
		}
	}
	if hookCalls == 0 {
		t.Error("safe-point hook never fired")
	}
	// One safe point precedes every dispatch attempt; with E events that
	// is at least E (each dispatched event was preceded by a check).
	if hookCalls < hooked.Events() {
		t.Errorf("hook fired %d times for %d events", hookCalls, hooked.Events())
	}
	hooked.Shutdown()
	plain.Shutdown()
}

// TestQueueStats pins the wheel/overflow/nowq split reported at a safe
// point: a far-future event sits in the overflow heap, near events in
// the wheel, and a same-cycle event scheduled mid-dispatch in the nowq.
func TestQueueStats(t *testing.T) {
	e := New()
	e.At(1, func() {})
	e.At(2, func() {})
	e.At(wheelSize*4, func() {}) // beyond the window: overflow
	if w, o, n := e.QueueStats(); w != 2 || o != 1 || n != 0 {
		t.Errorf("QueueStats before run = (%d, %d, %d), want (2, 1, 0)", w, o, n)
	}

	sawNowq := false
	e2 := New()
	e2.At(5, func() {
		e2.At(5, func() {}) // same cycle while running: nowq
		if _, _, n := e2.QueueStats(); n == 1 {
			sawNowq = true
		}
	})
	if _, err := e2.Run(); err != nil {
		t.Fatal(err)
	}
	if !sawNowq {
		t.Error("same-cycle event not visible in nowq stats")
	}
}

package sim

import "testing"

func BenchmarkEventDispatch(b *testing.B) {
	b.ReportAllocs()
	e := New()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcessWait measures the kernel's hottest path: one process
// blocking and being woken once per simulated cycle.
func BenchmarkProcessWait(b *testing.B) {
	b.ReportAllocs()
	e := New()
	e.Spawn("w", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Shutdown()
}

// BenchmarkProcessWaitZero measures the same-cycle wake path: Wait(0)
// yields for the current cycle and must resume without advancing time.
func BenchmarkProcessWaitZero(b *testing.B) {
	b.ReportAllocs()
	e := New()
	e.Spawn("w", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Wait(0)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Shutdown()
}

// BenchmarkSpawnWaitChurn measures process lifecycle cost: each iteration
// spawns a short-lived process that blocks a few times and exits, the
// pattern of per-transaction helper processes in the coherence engine.
func BenchmarkSpawnWaitChurn(b *testing.B) {
	b.ReportAllocs()
	e := New()
	for i := 0; i < b.N; i++ {
		e.Spawn("churn", func(p *Process) {
			p.Wait(1)
			p.Wait(1)
			p.Wait(0)
		})
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
	e.Shutdown()
}

// BenchmarkHeapPushPop measures the binary min-heap that backs the
// timing wheel's far-future overflow: each iteration pushes and pops one
// event while depth-1 others are pending. Kept as the baseline the wheel
// is compared against (see BenchmarkWheelDepths).
func BenchmarkHeapPushPop(b *testing.B) {
	for _, depth := range []int{16, 256, 4096} {
		depth := depth
		b.Run(benchName(depth), func(b *testing.B) {
			b.ReportAllocs()
			var h eventHeap
			r := NewRNG(7)
			var seq int64
			for i := 0; i < depth-1; i++ {
				seq++
				h.push(event{time: 1 + r.Int63n(1<<30), seq: seq})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				seq++
				h.push(event{time: 1 + r.Int63n(1<<30), seq: seq})
				h.pop()
			}
		})
	}
}

// BenchmarkWheelDepths measures the full event queue (wheel + overflow)
// at the same depths as BenchmarkHeapPushPop. The "near" variant keeps
// every event inside the wheel window — the simulator's hot distribution
// (mesh hops, service times) — so push/pop is slot append plus bitmap
// scan; the "far" variant forces most events through the overflow heap
// and its migration path.
func BenchmarkWheelDepths(b *testing.B) {
	for _, dist := range []struct {
		name string
		span int64
	}{
		{"near", wheelSize - 1},
		{"far", 1 << 20},
	} {
		for _, depth := range []int{16, 256, 4096} {
			dist, depth := dist, depth
			b.Run(dist.name+"/"+benchName(depth), func(b *testing.B) {
				b.ReportAllocs()
				var q eventQueue
				r := NewRNG(7)
				var now, seq int64
				push := func() {
					seq++
					q.push(event{time: now + 1 + r.Int63n(dist.span), seq: seq})
				}
				for i := 0; i < depth-1; i++ {
					push()
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					push()
					now = q.pop().time
				}
			})
		}
	}
}

func benchName(depth int) string {
	switch depth {
	case 16:
		return "depth16"
	case 256:
		return "depth256"
	default:
		return "depth4096"
	}
}

// BenchmarkPingPong measures a many-process wake storm: pairs of
// processes handing a future back and forth, the shape of
// request/reply traffic between coherence transaction processes.
func BenchmarkPingPong(b *testing.B) {
	b.ReportAllocs()
	const pairs = 8
	e := New()
	type court struct {
		ball *Future[int]
		back *Future[int]
	}
	courts := make([]*court, pairs)
	rounds := b.N/pairs + 1
	for i := 0; i < pairs; i++ {
		c := &court{ball: NewFuture[int](), back: NewFuture[int]()}
		courts[i] = c
		e.Spawn("ping", func(p *Process) {
			for r := 0; r < rounds; r++ {
				ball := c.ball
				back := c.back
				ball.Complete(p.Engine(), r)
				back.Await(p)
				if r+1 < rounds {
					c.ball = NewFuture[int]()
					c.back = NewFuture[int]()
				}
			}
		})
		e.Spawn("pong", func(p *Process) {
			for r := 0; r < rounds; r++ {
				ball := c.ball
				ball.Await(p)
				p.Wait(1)
				c.back.Complete(p.Engine(), r)
				p.Wait(1)
			}
		})
	}
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Shutdown()
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

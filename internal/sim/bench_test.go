package sim

import "testing"

func BenchmarkEventDispatch(b *testing.B) {
	e := New()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessWait(b *testing.B) {
	e := New()
	e.Spawn("w", func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Wait(1)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
	e.Shutdown()
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

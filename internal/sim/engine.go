// Package sim is a deterministic discrete-event simulation kernel in the
// style of the CSIM library used by the paper's original simulator: time is
// a monotonically increasing cycle counter, callbacks fire at scheduled
// cycles, and long-running activities are written as lightweight processes
// (one goroutine each) that block on simulated time, futures, resources and
// barriers.
//
// Determinism: at most one goroutine (the engine or exactly one process)
// runs at any instant, enforced by a strict baton-passing discipline, and
// simultaneous events fire in schedule order. Two runs with the same seed
// and the same inputs produce identical event sequences.
//
// The hot paths are allocation-free: pending events live in a timing
// wheel (wheel.go) of reusable slots, process wakes and typed payload
// events (EventSink) are enum-dispatched without closures, and the
// goroutine holding the baton dispatches subsequent events itself — a
// process waking another process is one channel handoff, a process
// waking itself is none.
package sim

import (
	"errors"
	"fmt"
	"slices"
)

// Engine is the event queue and clock of one simulation. The zero value is
// not usable; call New.
type Engine struct {
	now   int64
	seq   int64
	queue eventQueue

	// nowq is the same-cycle fast path: events scheduled while running
	// for the current cycle are appended here (a FIFO, already in seq
	// order) instead of paying a queue insert. Dispatch merges nowq and
	// the queue by (time, seq), so ordering is identical to a queue-only
	// schedule. nowqHead indexes the next pending entry; the backing
	// array is reused once drained.
	nowq     []event
	nowqHead int

	// yield carries the baton back to the engine goroutine; during a run
	// it is sent exactly once, when the run is over (queue empty, Stop,
	// or the RunUntil limit). During Shutdown it signals each kill step.
	yield chan struct{}

	limit int64 // current run's RunUntil limit (-1: none)

	procs   map[*Process]struct{}
	nextPID int

	running  bool
	stopped  bool
	shutdown bool

	events int64 // total events dispatched, for diagnostics

	// safePoint, when set, runs before every event dispatch, on whichever
	// goroutine holds the baton. The engine is quiescent at that instant —
	// no callback is mid-flight — so the hook may read any simulator state
	// reachable from the engine, but it must not schedule events, wake
	// processes, or mutate state: the dispatch sequence of an inspected
	// run must be identical to an uninspected one. Nil (the default) costs
	// one predictable branch per event.
	safePoint func(now int64)
}

// EventSink receives typed events scheduled with AtSink/AfterSink. The
// arg is an opaque payload chosen by the scheduler of the event (an
// index into a pending-work slab, a timer generation, ...); together
// they make recurring timers and message deliveries allocation-free
// where an At closure would allocate per event. OnEvent runs in event
// context and must not block.
type EventSink interface {
	OnEvent(e *Engine, arg int64)
}

// eventKind discriminates the event payload; see event.
type eventKind uint8

const (
	evFn    eventKind = iota // fn: arbitrary callback
	evWake                   // proc: resume a parked process
	evStart                  // proc: first dispatch of a spawned process
	evSink                   // sink, arg: typed allocation-free payload
)

// event is one scheduled occurrence. Exactly one payload field is live,
// selected by kind; wakes, starts and sink events carry typed fields so
// the hot block/wake and message-delivery paths schedule without
// allocating a closure.
type event struct {
	time int64
	seq  int64
	kind eventKind
	fn   func()
	proc *Process
	sink EventSink
	arg  int64
}

// New returns a fresh engine with the clock at cycle zero.
func New() *Engine {
	return &Engine{
		nowq:  make([]event, 0, 64),
		yield: make(chan struct{}),
		procs: make(map[*Process]struct{}),
		limit: -1,
	}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() int64 { return e.now }

// Events returns the number of events dispatched so far.
func (e *Engine) Events() int64 { return e.events }

// Processes returns the number of live (spawned, not yet finished)
// processes.
func (e *Engine) Processes() int { return len(e.procs) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics.
func (e *Engine) At(t int64, fn func()) {
	e.schedule(event{time: t, kind: evFn, fn: fn})
}

// AtSink schedules a typed event: at absolute time t, sink.OnEvent runs
// with the given arg. The allocation-free alternative to At for hot
// paths (see EventSink).
func (e *Engine) AtSink(t int64, sink EventSink, arg int64) {
	e.schedule(event{time: t, kind: evSink, sink: sink, arg: arg})
}

// atWake schedules the resumption of a parked process at absolute time
// t. It is the allocation-free twin of At used by every blocking
// primitive (Wait, future/resource/barrier wakes).
func (e *Engine) atWake(t int64, p *Process) {
	e.schedule(event{time: t, kind: evWake, proc: p})
}

func (e *Engine) schedule(ev event) {
	if ev.time < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", ev.time, e.now))
	}
	e.seq++
	ev.seq = e.seq
	if e.running && ev.time == e.now {
		e.nowq = append(e.nowq, ev)
		return
	}
	e.queue.push(ev)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d int64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// AfterSink schedules a typed event d cycles from now; see AtSink.
func (e *Engine) AfterSink(d int64, sink EventSink, arg int64) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.AtSink(e.now+d, sink, arg)
}

// Stop makes Run return after the currently dispatching event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetSafePointHook installs fn to run at every dispatch safe point —
// between events, on the baton-holding goroutine, with the engine
// quiescent. The hook must be read-only with respect to simulation
// state (see the safePoint field); it is how the live-inspection layer
// (internal/inspect) answers queries without perturbing dispatch order.
// A nil fn removes the hook. The number of safe points is a pure
// function of the event sequence, so hook invocations themselves are
// deterministic.
func (e *Engine) SetSafePointHook(fn func(now int64)) { e.safePoint = fn }

// QueueStats reports the pending-event population by residence: wheel
// (near-future slots), overflow (far-future heap), and nowq (the
// same-cycle FIFO). Read-only; safe to call from a safe-point hook.
func (e *Engine) QueueStats() (wheel, overflow, nowq int) {
	wheel, overflow = e.queue.stats()
	return wheel, overflow, len(e.nowq) - e.nowqHead
}

// ErrNested is returned by Run when called re-entrantly.
var ErrNested = errors.New("sim: Run called while already running")

// Run dispatches events in (time, schedule-order) until the queue is empty,
// Stop is called, or the optional limit is reached. It returns the time at
// which it stopped.
func (e *Engine) Run() (int64, error) { return e.RunUntil(-1) }

// RunUntil behaves like Run but additionally stops once the clock would
// advance past limit (events at exactly limit still fire). A negative limit
// means no limit.
//
// The engine goroutine dispatches callbacks until control first transfers
// to a process; from then on whichever goroutine holds the baton keeps
// dispatching (see advance), and the engine blocks until a holder finds
// the run over and hands the baton back.
func (e *Engine) RunUntil(limit int64) (int64, error) {
	if e.running {
		return e.now, ErrNested
	}
	e.running = true
	e.stopped = false
	e.limit = limit
	defer func() { e.running = false }()

	if e.advance(nil) == advHandoff {
		<-e.yield
	}
	return e.now, nil
}

// advResult says how an advance call ended.
type advResult uint8

const (
	// advOver: the run is over — queue empty, Stop called, or the limit
	// reached. The engine goroutine returns from RunUntil on it; a
	// process-side holder must hand the baton back through yield.
	advOver advResult = iota
	// advHandoff: the baton moved to another process goroutine.
	advHandoff
	// advSelf: the caller's own wake event fired (process holders only);
	// the caller resumes user code without any channel operation.
	advSelf
)

// advance dispatches due events on the calling goroutine — the current
// baton holder — until the run ends or the baton must transfer.
// Callbacks and typed sink events run inline regardless of which
// goroutine holds the baton (exactly one goroutine runs at any instant,
// so the single-threaded discipline is preserved); a wake of self
// returns control to the caller's user code directly.
func (e *Engine) advance(self *Process) advResult {
	for {
		if e.safePoint != nil {
			e.safePoint(e.now)
		}
		ev, ok := e.next()
		if !ok {
			return advOver
		}
		e.now = ev.time
		e.events++
		switch ev.kind {
		case evFn:
			ev.fn()
		case evSink:
			ev.sink.OnEvent(e, ev.arg)
		case evWake:
			if ev.proc == self {
				return advSelf
			}
			ev.proc.wake <- struct{}{}
			return advHandoff
		case evStart:
			go ev.proc.top()
			return advHandoff
		}
	}
}

// next pops the next due event, merging the same-cycle FIFO with the
// timing wheel in (time, seq) order. ok is false when the run is over:
// the queue is drained, Stop was called, or the next event lies beyond
// the RunUntil limit (in which case the clock advances to the limit).
func (e *Engine) next() (event, bool) {
	if e.stopped {
		return event{}, false
	}
	if e.nowqHead < len(e.nowq) {
		nq := e.nowq[e.nowqHead]
		// A queue event at the current cycle with a smaller seq was
		// scheduled earlier and fires first. nowq entries are always due
		// at e.now, so time never advances while any are pending.
		if top := e.queue.peek(); top != nil &&
			(top.time < nq.time || (top.time == nq.time && top.seq < nq.seq)) {
			return e.queue.pop(), true
		}
		e.nowq[e.nowqHead] = event{} // release fn/proc/sink for the GC
		e.nowqHead++
		if e.nowqHead == len(e.nowq) {
			e.nowq = e.nowq[:0] // drained: reuse the backing array
			e.nowqHead = 0
		}
		return nq, true
	}
	if e.queue.len() == 0 {
		return event{}, false
	}
	if e.limit >= 0 {
		if top := e.queue.peek(); top.time > e.limit {
			e.now = e.limit
			return event{}, false
		}
	}
	ev := e.queue.pop()
	if ev.time < e.now {
		panic("sim: event queue went backwards")
	}
	return ev, true
}

// Shutdown terminates every live process (they observe a killed signal at
// their next — or current — blocking point) and drains their goroutines,
// in ascending process-id order for determinism. The engine must not be
// running. After Shutdown the engine can still inspect state but should
// not schedule further work.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Shutdown while running")
	}
	e.shutdown = true
	// Snapshot and sort once per pass instead of an O(n²) lowest-id scan;
	// the outer loop re-collects in case an unwinding process spawns or
	// reaps peers.
	for len(e.procs) > 0 {
		order := make([]*Process, 0, len(e.procs))
		for p := range e.procs {
			order = append(order, p)
		}
		slices.SortFunc(order, func(a, b *Process) int { return a.id - b.id })
		for _, p := range order {
			if _, live := e.procs[p]; !live {
				continue
			}
			p.killed = true
			p.wake <- struct{}{}
			<-e.yield
		}
	}
}

// wakeNow schedules an immediate handshake that resumes p and waits for it
// to park again or finish.
func (e *Engine) wakeNow(p *Process) {
	e.atWake(e.now, p)
}

// WakeNow resumes a process blocked in Park at the current simulated
// time. The counterpart of Process.Park for externally built primitives.
func (e *Engine) WakeNow(p *Process) { e.wakeNow(p) }

// eventHeap is a binary min-heap ordered by (time, seq); it backs the
// timing wheel's far-future overflow (wheel.go).
type eventHeap struct{ a []event }

func (h *eventHeap) len() int     { return len(h.a) }
func (h *eventHeap) peek() *event { return &h.a[0] }

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].time != h.a[j].time {
		return h.a[i].time < h.a[j].time
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = event{} // release the closure
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.a) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.a) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

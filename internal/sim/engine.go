// Package sim is a deterministic discrete-event simulation kernel in the
// style of the CSIM library used by the paper's original simulator: time is
// a monotonically increasing cycle counter, callbacks fire at scheduled
// cycles, and long-running activities are written as lightweight processes
// (one goroutine each) that block on simulated time, futures, resources and
// barriers.
//
// Determinism: at most one goroutine (the engine or exactly one process)
// runs at any instant, enforced by a strict wake/yield handshake, and
// simultaneous events fire in schedule order. Two runs with the same seed
// and the same inputs produce identical event sequences.
package sim

import (
	"errors"
	"fmt"
)

// Engine is the event queue and clock of one simulation. The zero value is
// not usable; call New.
type Engine struct {
	now   int64
	seq   int64
	queue eventHeap

	// nowq is the same-cycle fast path: events scheduled while running
	// for the current cycle are appended here (a FIFO, already in seq
	// order) instead of paying a heap push/pop. The dispatch loop merges
	// nowq and the heap by (time, seq), so ordering is identical to a
	// heap-only schedule. nowqHead indexes the next pending entry; the
	// backing array is reused once drained.
	nowq     []event
	nowqHead int

	yield chan struct{} // processes hand control back to the engine here

	procs   map[*Process]struct{}
	nextPID int

	running  bool
	stopped  bool
	shutdown bool

	events int64 // total events dispatched, for diagnostics
}

// event is one scheduled occurrence. Exactly one of fn and proc is set:
// fn is an arbitrary callback; proc is a parked process to resume, kept
// as a typed field so the hot block/wake path (Process.Wait, future and
// resource wakes) schedules without allocating a closure.
type event struct {
	time int64
	seq  int64
	fn   func()
	proc *Process
}

// initialQueueCap pre-sizes the event containers so steady-state
// simulations never grow them; both backing arrays are reused across
// Run calls for the life of the engine.
const initialQueueCap = 256

// New returns a fresh engine with the clock at cycle zero.
func New() *Engine {
	return &Engine{
		queue: eventHeap{a: make([]event, 0, initialQueueCap)},
		nowq:  make([]event, 0, initialQueueCap/4),
		yield: make(chan struct{}),
		procs: make(map[*Process]struct{}),
	}
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() int64 { return e.now }

// Events returns the number of events dispatched so far.
func (e *Engine) Events() int64 { return e.events }

// Processes returns the number of live (spawned, not yet finished)
// processes.
func (e *Engine) Processes() int { return len(e.procs) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error and panics.
func (e *Engine) At(t int64, fn func()) {
	e.schedule(event{time: t, fn: fn})
}

// atWake schedules the resumption of a parked process at absolute time
// t. It is the allocation-free twin of At used by every blocking
// primitive (Wait, future/resource/barrier wakes).
func (e *Engine) atWake(t int64, p *Process) {
	e.schedule(event{time: t, proc: p})
}

func (e *Engine) schedule(ev event) {
	if ev.time < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", ev.time, e.now))
	}
	e.seq++
	ev.seq = e.seq
	if e.running && ev.time == e.now {
		e.nowq = append(e.nowq, ev)
		return
	}
	e.queue.push(ev)
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d int64, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	e.At(e.now+d, fn)
}

// Stop makes Run return after the currently dispatching event completes.
func (e *Engine) Stop() { e.stopped = true }

// ErrNested is returned by Run when called re-entrantly.
var ErrNested = errors.New("sim: Run called while already running")

// Run dispatches events in (time, schedule-order) until the queue is empty,
// Stop is called, or the optional limit is reached. It returns the time at
// which it stopped.
func (e *Engine) Run() (int64, error) { return e.RunUntil(-1) }

// RunUntil behaves like Run but additionally stops once the clock would
// advance past limit (events at exactly limit still fire). A negative limit
// means no limit.
func (e *Engine) RunUntil(limit int64) (int64, error) {
	if e.running {
		return e.now, ErrNested
	}
	e.running = true
	e.stopped = false
	defer func() { e.running = false }()

	for !e.stopped {
		// Drain the same-cycle FIFO in merged (time, seq) order with the
		// heap: a heap event at the current cycle with a smaller seq was
		// scheduled earlier and fires first. nowq entries are always due
		// at e.now, so time never advances while any are pending.
		if e.nowqHead < len(e.nowq) {
			nq := e.nowq[e.nowqHead]
			if e.queue.len() > 0 {
				top := e.queue.peek()
				if top.time < nq.time || (top.time == nq.time && top.seq < nq.seq) {
					e.dispatch(e.queue.pop())
					continue
				}
			}
			e.nowq[e.nowqHead] = event{} // release fn/proc for the GC
			e.nowqHead++
			if e.nowqHead == len(e.nowq) {
				e.nowq = e.nowq[:0] // drained: reuse the backing array
				e.nowqHead = 0
			}
			e.dispatch(nq)
			continue
		}
		if e.queue.len() == 0 {
			break
		}
		next := e.queue.peek()
		if limit >= 0 && next.time > limit {
			e.now = limit
			return e.now, nil
		}
		ev := e.queue.pop()
		if ev.time < e.now {
			panic("sim: event queue went backwards")
		}
		e.dispatch(ev)
	}
	return e.now, nil
}

// dispatch fires one due event: either a plain callback or, on the
// allocation-free wake path, the handshake resuming a parked process.
func (e *Engine) dispatch(ev event) {
	e.now = ev.time
	e.events++
	if ev.proc != nil {
		ev.proc.wake <- struct{}{}
		<-e.yield
		return
	}
	ev.fn()
}

// Shutdown terminates every live process (they observe a killed signal at
// their next — or current — blocking point) and drains their goroutines.
// The engine must not be running. After Shutdown the engine can still
// inspect state but should not schedule further work.
func (e *Engine) Shutdown() {
	if e.running {
		panic("sim: Shutdown while running")
	}
	e.shutdown = true
	// Wake every parked process; each observes killed and unwinds.
	for len(e.procs) > 0 {
		var p *Process
		for q := range e.procs {
			if p == nil || q.id < p.id {
				p = q // deterministic order: lowest id first
			}
		}
		p.killed = true
		p.wake <- struct{}{}
		<-e.yield
	}
}

// wakeNow schedules an immediate handshake that resumes p and waits for it
// to park again or finish.
func (e *Engine) wakeNow(p *Process) {
	e.atWake(e.now, p)
}

// WakeNow resumes a process blocked in Park at the current simulated
// time. The counterpart of Process.Park for externally built primitives.
func (e *Engine) WakeNow(p *Process) { e.wakeNow(p) }

// eventHeap is a binary min-heap ordered by (time, seq).
type eventHeap struct{ a []event }

func (h *eventHeap) len() int     { return len(h.a) }
func (h *eventHeap) peek() *event { return &h.a[0] }

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].time != h.a[j].time {
		return h.a[i].time < h.a[j].time
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *eventHeap) push(ev event) {
	h.a = append(h.a, ev)
	i := len(h.a) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) pop() event {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = event{} // release the closure
	h.a = h.a[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.a) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.a) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		h.a[i], h.a[smallest] = h.a[smallest], h.a[i]
		i = smallest
	}
	return top
}

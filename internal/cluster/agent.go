// Package cluster implements the comad worker-node agent: the process
// (cmd/comanode) that registers with a cluster coordinator (comad serve
// -cluster), heartbeats, leases jobs, executes them on the in-process
// simulator and streams results and progress back.
//
// Fault model. The agent holds leases — job id plus deadline — renewed
// by every heartbeat and lease request. If the agent goes silent
// (crash, partition, SIGKILL) the coordinator declares it dead after
// one lease TTL and requeues its jobs on another node; because jobs are
// content-addressed run identities and every node computes
// byte-identical payloads (server.MarshalResult over a deterministic
// simulation), re-execution is always safe and a zombie's late result
// is indistinguishable from the replacement's. The agent therefore
// never needs distributed agreement: it only has to keep beating, and
// re-register (HTTP 410) when the coordinator has given up on it.
//
// Concurrency model. This package is host-side serve-layer concurrency,
// outside the simulator's no-goroutines rule (it holds a
// ConcurrencyAllowlist entry like internal/server): each leased job
// runs on its own slot goroutine with a private machine and
// seed-derived RNG streams, so OS scheduling cannot perturb simulated
// outcomes — the same determinism argument the coordinator's cache
// relies on.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"coma/internal/obs"
	"coma/internal/obs/receipt"
	"coma/internal/server"
	"coma/internal/server/client"
)

// Config configures an Agent.
type Config struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:7700").
	Coordinator string
	// Name labels the worker in coordinator listings and logs.
	Name string
	// Slots is how many simulations run concurrently (0: 1).
	Slots int
	// Prefetch is how many leases beyond Slots to hold locally so a slot
	// never idles waiting on a lease round-trip (0: 1; negative: 0).
	Prefetch int
	// Runner executes runs (nil: server.SimRunner, the real simulator).
	Runner server.Runner
	// Revision is the worker's code revision, checked at registration —
	// a coordinator refuses workers built from different code.
	Revision string
	// JitterSeed seeds retry backoff (0: derived from Name).
	JitterSeed uint64
	// HeartbeatEvery overrides the coordinator's advertised heartbeat
	// period (0: use the coordinator's).
	HeartbeatEvery time.Duration
	// Logf receives operational log lines (nil: discarded).
	Logf func(format string, args ...any)

	// NoReceipts disables execution receipts: by default every job is
	// run under a receipt-grade recorder and its completion carries a
	// coma-receipt/v1 document the coordinator digest-checks before
	// accepting the result.
	NoReceipts bool
	// ReceiptKey HMAC-signs emitted receipts; must match the
	// coordinator's key when it enforces one.
	ReceiptKey []byte
}

// Agent is one worker node. Create with New, drive with Run.
type Agent struct {
	cfg Config
	cli *client.Client

	mu       sync.Mutex
	id       string                            // coordinator-assigned; reset on re-register
	queue    []server.LeasedJob                // leased, not yet started
	running  map[string]bool                   // started, not yet completed
	progress map[string][]server.ProgressEvent // pending batches per job
	draining bool

	wake   chan struct{} // signals slot executors: queue grew or drain began
	killed chan struct{} // closed by Kill: simulate abrupt process death

	killOnce sync.Once
	wg       sync.WaitGroup // slot executors
}

// New assembles an agent. Call Run to start it.
func New(cfg Config) *Agent {
	if cfg.Slots < 1 {
		cfg.Slots = 1
	}
	if cfg.Prefetch == 0 {
		cfg.Prefetch = 1
	} else if cfg.Prefetch < 0 {
		cfg.Prefetch = 0
	}
	if cfg.Runner == nil {
		cfg.Runner = server.SimRunner
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		for _, b := range []byte(cfg.Name) {
			seed = seed*131 + uint64(b) + 1
		}
		seed++ // never zero
	}
	return &Agent{
		cfg:      cfg,
		cli:      client.NewSeeded(cfg.Coordinator, seed),
		running:  make(map[string]bool),
		progress: make(map[string][]server.ProgressEvent),
		wake:     make(chan struct{}, 64),
		killed:   make(chan struct{}),
	}
}

// Kill simulates abrupt process death for fault-injection tests: all
// communication with the coordinator stops instantly — no heartbeats,
// no completions, no deregistration — so held leases expire and requeue
// elsewhere. In-flight simulations finish silently and their results
// are dropped on the floor. Idempotent.
func (a *Agent) Kill() {
	a.killOnce.Do(func() { close(a.killed) })
}

// Run registers with the coordinator and works until ctx is cancelled
// (graceful drain: in-flight jobs finish and complete, the unstarted
// backlog is returned by deregistration) or Kill is called (abrupt
// death: everything is abandoned). It returns nil on a clean drain.
func (a *Agent) Run(ctx context.Context) error {
	reg, err := a.register(ctx)
	if err != nil {
		return err
	}
	heartbeatEvery := a.cfg.HeartbeatEvery
	if heartbeatEvery <= 0 {
		heartbeatEvery = time.Duration(reg.HeartbeatMS) * time.Millisecond
	}
	if heartbeatEvery <= 0 {
		heartbeatEvery = server.DefaultHeartbeatEvery
	}
	a.logf("registered with %s as %s (%d slot(s), heartbeat %v)",
		a.cfg.Coordinator, reg.WorkerID, a.cfg.Slots, heartbeatEvery)

	// Slot executors: each runs one simulation at a time off the local
	// lease queue.
	for i := 0; i < a.cfg.Slots; i++ {
		a.wg.Add(1)
		go func() {
			defer a.wg.Done()
			a.executeLoop()
		}()
	}

	// Heartbeat loop: liveness, revocations, progress flushing.
	hbDone := make(chan struct{})
	hbCtx, stopHB := context.WithCancel(context.Background())
	go func() {
		defer close(hbDone)
		a.heartbeatLoop(hbCtx, heartbeatEvery)
	}()

	// Lease loop (this goroutine): long-poll for work while there is
	// local capacity.
	err = a.leaseLoop(ctx)

	// Drain: stop accepting work, let executors finish what they
	// started, then tell the coordinator we are leaving so the backlog
	// requeues immediately instead of waiting out the lease TTL.
	a.mu.Lock()
	a.draining = true
	returned := len(a.queue)
	a.queue = nil
	a.mu.Unlock()
	a.broadcastWake()
	a.wg.Wait()
	stopHB()
	<-hbDone
	if a.isKilled() {
		return err
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if derr := a.cli.DeregisterWorker(shutCtx, a.workerID()); derr != nil && !client.IsGone(derr) {
		a.logf("deregister: %v", derr)
	}
	a.logf("drained (%d unstarted lease(s) returned)", returned)
	return err
}

// register registers with capped-backoff retries until ctx expires. A
// revision mismatch (HTTP 409) aborts immediately: retrying cannot fix
// a wrong binary.
func (a *Agent) register(ctx context.Context) (server.RegisterResponse, error) {
	backoff := client.NewBackoff(a.jitterSeed())
	for {
		reg, err := a.cli.RegisterWorker(ctx, server.RegisterRequest{
			Name: a.cfg.Name, Slots: a.cfg.Slots, Revision: a.cfg.Revision,
		})
		if err == nil {
			a.mu.Lock()
			a.id = reg.WorkerID
			a.mu.Unlock()
			return reg, nil
		}
		if client.StatusCode(err) == http.StatusConflict {
			return reg, fmt.Errorf("cluster: coordinator refused registration: %w", err)
		}
		if ctx.Err() != nil {
			return reg, ctx.Err()
		}
		a.logf("register: %v (retrying)", err)
		if !sleepCtx(ctx, a.killed, backoff.Next(0)) {
			return reg, errors.New("cluster: agent killed during registration")
		}
	}
}

// leaseLoop long-polls the coordinator for work whenever local capacity
// (slots + prefetch minus held leases) is positive, enqueues what it
// gets, and applies revocations. Returns when ctx is cancelled, the
// agent is killed, or the coordinator says it is draining.
func (a *Agent) leaseLoop(ctx context.Context) error {
	backoff := client.NewBackoff(a.jitterSeed() ^ 0xc1a5)
	for {
		if ctx.Err() != nil || a.isKilled() {
			return nil
		}
		capacity := a.capacity()
		if capacity <= 0 {
			// Fully loaded: wait for a slot to free up rather than
			// holding a pointless long-poll open.
			if !sleepCtx(ctx, a.killed, 50*time.Millisecond) {
				return nil
			}
			continue
		}
		resp, err := a.cli.LeaseJobs(ctx, a.workerID(), server.LeaseRequest{
			Max:    capacity,
			WaitMS: 2000,
		})
		if err != nil {
			if ctx.Err() != nil || a.isKilled() {
				return nil
			}
			if client.IsGone(err) {
				// Coordinator declared us dead (our leases already
				// requeued); rejoin as a fresh worker.
				a.logf("lease: declared dead, re-registering")
				if _, rerr := a.register(ctx); rerr != nil {
					return rerr
				}
				backoff.Reset()
				continue
			}
			a.logf("lease: %v (retrying)", err)
			if !sleepCtx(ctx, a.killed, backoff.Next(0)) {
				return nil
			}
			continue
		}
		backoff.Reset()
		a.applyRevocations(resp.Revoked)
		if len(resp.Jobs) > 0 {
			a.mu.Lock()
			a.queue = append(a.queue, resp.Jobs...)
			a.mu.Unlock()
			for range resp.Jobs {
				a.signalWake()
			}
		}
		if resp.Draining {
			a.logf("coordinator draining, finishing held work")
			return nil
		}
	}
}

// heartbeatLoop renews leases and reports started jobs on a fixed
// period, delivering any buffered progress batches alongside.
func (a *Agent) heartbeatLoop(ctx context.Context, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-a.killed:
			return
		case <-ticker.C:
		}
		a.flushProgress(ctx)
		resp, err := a.cli.Heartbeat(ctx, a.workerID(), server.HeartbeatRequest{Running: a.runningIDs()})
		if err != nil {
			if ctx.Err() == nil && !client.IsGone(err) {
				a.logf("heartbeat: %v", err)
			}
			// A 410 here means the coordinator gave up on us; the lease
			// loop re-registers on its next request.
			continue
		}
		a.applyRevocations(resp.Revoked)
	}
}

// executeLoop is one slot: take a leased job, simulate, complete.
func (a *Agent) executeLoop() {
	for {
		j, ok := a.take()
		if !ok {
			return
		}
		a.execute(j)
	}
}

// take blocks until a leased job is available (moving it queued →
// running) or the agent drains or dies.
func (a *Agent) take() (server.LeasedJob, bool) {
	for {
		a.mu.Lock()
		if len(a.queue) > 0 {
			j := a.queue[0]
			a.queue = a.queue[1:]
			a.running[j.JobID] = true
			a.mu.Unlock()
			return j, true
		}
		drained := a.draining
		a.mu.Unlock()
		if drained {
			return server.LeasedJob{}, false
		}
		select {
		case <-a.wake:
		case <-a.killed:
			return server.LeasedJob{}, false
		}
	}
}

// execute runs one leased job and delivers its outcome. Progress events
// are buffered under the job id and shipped by the heartbeat loop; a
// final flush precedes completion so the SSE stream is complete before
// the terminal state event.
func (a *Agent) execute(j server.LeasedJob) {
	defer func() {
		a.mu.Lock()
		delete(a.running, j.JobID)
		delete(a.progress, j.JobID)
		a.mu.Unlock()
	}()

	var opts server.RunOptions
	var rec *obs.Recorder
	if !a.cfg.NoReceipts {
		rec = obs.NewRecorder(receipt.TraceMask)
		opts.Observer = rec
	}
	if j.Progress {
		progress := server.NewProgressObserver(nil, func(msg string, simCycles int64) {
			a.mu.Lock()
			a.progress[j.JobID] = append(a.progress[j.JobID], server.ProgressEvent{Message: msg, SimCycles: simCycles})
			a.mu.Unlock()
		})
		if rec != nil {
			opts.Observer = teeObserver{rec, progress}
		} else {
			opts.Observer = progress
		}
	}
	run, err := a.cfg.Runner(j.Identity, opts)
	if a.isKilled() {
		return // dead processes deliver nothing
	}

	req := server.CompleteRequest{JobID: j.JobID}
	if err != nil {
		req.Error = err.Error()
	} else if req.Result, err = server.MarshalResult(run); err != nil {
		req.Error = fmt.Sprintf("encoding result: %v", err)
	} else if rec != nil {
		// Attach the execution receipt: the coordinator recomputes the
		// result digest against it before the payload may enter the
		// store. The trace itself stays on the worker; its digest in the
		// receipt lets any holder of the trace attest it later.
		rcpt, _, rerr := receipt.Build(j.Identity, req.Result, rec.Events(), a.cfg.Name)
		if rerr != nil {
			a.logf("receipt %s: %v (completing without one)", short(j.JobID), rerr)
		} else {
			if len(a.cfg.ReceiptKey) > 0 {
				rcpt = rcpt.Sign(a.cfg.ReceiptKey)
			}
			req.Receipt = rcpt.CanonicalJSON()
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	a.flushProgress(ctx)
	backoff := client.NewBackoff(a.jitterSeed() ^ 0x0b5)
	for {
		cerr := a.cli.CompleteJob(ctx, a.workerID(), req)
		if cerr == nil {
			return
		}
		if sc := client.StatusCode(cerr); sc >= 400 && sc < 500 || ctx.Err() != nil || a.isKilled() {
			// Unknown job (cancelled or coordinator restarted), or the
			// coordinator rejected the completion outright (digest
			// mismatch — it has already requeued the job): retrying the
			// same bytes cannot succeed.
			if sc == http.StatusUnprocessableEntity {
				a.logf("complete %s: rejected: %v", short(j.JobID), cerr)
			}
			return
		}
		a.logf("complete %s: %v (retrying)", short(j.JobID), cerr)
		if !sleepCtx(ctx, a.killed, backoff.Next(0)) {
			return
		}
	}
}

// teeObserver fans events out to the receipt recorder and the progress
// bridge; one call per event, no allocations.
type teeObserver struct{ a, b obs.Observer }

// Emit implements obs.Observer.
func (t teeObserver) Emit(ev obs.Event) {
	t.a.Emit(ev)
	t.b.Emit(ev)
}

// applyRevocations drops revoked jobs that have not started; jobs
// already running are left alone — whoever completes first wins, the
// loser's completion is a benign duplicate.
func (a *Agent) applyRevocations(revoked []string) {
	if len(revoked) == 0 {
		return
	}
	gone := make(map[string]bool, len(revoked))
	for _, id := range revoked {
		gone[id] = true
	}
	a.mu.Lock()
	kept := a.queue[:0]
	for _, j := range a.queue {
		if !gone[j.JobID] {
			kept = append(kept, j)
		}
	}
	dropped := len(a.queue) - len(kept)
	a.queue = kept
	a.mu.Unlock()
	if dropped > 0 {
		a.logf("%d unstarted lease(s) revoked (stolen by an idle worker)", dropped)
	}
}

// flushProgress delivers every buffered progress batch.
func (a *Agent) flushProgress(ctx context.Context) {
	a.mu.Lock()
	pending := a.progress
	a.progress = make(map[string][]server.ProgressEvent)
	a.mu.Unlock()
	for jobID, events := range pending {
		if len(events) == 0 {
			continue
		}
		if err := a.cli.PostProgress(ctx, a.workerID(), server.ProgressRequest{JobID: jobID, Events: events}); err != nil {
			if ctx.Err() == nil && !client.IsGone(err) {
				a.logf("progress %s: %v", short(jobID), err)
			}
		}
	}
}

func (a *Agent) capacity() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.cfg.Slots + a.cfg.Prefetch - len(a.queue) - len(a.running)
}

func (a *Agent) runningIDs() []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	ids := make([]string, 0, len(a.running))
	for id := range a.running {
		ids = append(ids, id)
	}
	return ids
}

func (a *Agent) workerID() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.id
}

func (a *Agent) isKilled() bool {
	select {
	case <-a.killed:
		return true
	default:
		return false
	}
}

func (a *Agent) signalWake() {
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// broadcastWake wakes every blocked executor (used when draining).
func (a *Agent) broadcastWake() {
	for i := 0; i < a.cfg.Slots; i++ {
		a.signalWake()
	}
}

func (a *Agent) jitterSeed() uint64 {
	if a.cfg.JitterSeed != 0 {
		return a.cfg.JitterSeed
	}
	var seed uint64
	for _, b := range []byte(a.cfg.Name) {
		seed = seed*131 + uint64(b) + 1
	}
	return seed + 1
}

func (a *Agent) logf(format string, args ...any) {
	if a.cfg.Logf != nil {
		a.cfg.Logf("worker %s: "+format, append([]any{a.cfg.Name}, args...)...)
	}
}

// sleepCtx sleeps d, returning false if ctx ends or kill closes first.
func sleepCtx(ctx context.Context, kill <-chan struct{}, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	case <-kill:
		return false
	}
}

func short(id string) string {
	if len(id) > 12 {
		return id[:12]
	}
	return id
}

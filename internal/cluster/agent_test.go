package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"coma/internal/config"
	"coma/internal/experiments"
	"coma/internal/server"
	"coma/internal/server/client"
	"coma/internal/stats"
	"coma/internal/workload"
)

// campaignParams is a laptop-scale campaign with enough distinct runs
// (2 apps × (1 std + 2 ecp) = 6) to spread across a three-node cluster.
func campaignParams() experiments.Params {
	p := experiments.Bench()
	p.TargetInstructions = 300_000
	p.Freqs = []float64{200, 400}
	p.NodeSweep = []int{9}
	p.SweepHz = 400
	p.Apps = []workload.Spec{workload.Water(), workload.Mp3d()}
	return p
}

func renderFig3(t *testing.T, p experiments.Params) string {
	t.Helper()
	tb, err := experiments.NewSuite(p).Fig3()
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	return tb.String()
}

func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		rest, ok := strings.CutPrefix(line, name+" ")
		if !ok {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
		if err != nil {
			t.Fatalf("metric %s: bad value %q", name, rest)
		}
		return v
	}
	t.Fatalf("metric %s absent from scrape:\n%s", name, text)
	return 0
}

// TestClusterCampaignSurvivesWorkerKill is the end-to-end
// fault-tolerance contract of the cluster: a three-node cluster runs a
// real campaign, one node is SIGKILL-equivalently killed while it holds
// a leased job mid-simulation, the lease expires and requeues, the
// survivors absorb the work — and the rendered tables are byte-for-byte
// what a single-process run produces.
func TestClusterCampaignSurvivesWorkerKill(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cluster integration test")
	}
	serial := renderFig3(t, campaignParams()) // single-process baseline

	const rev = "itest"
	srv, err := server.New(server.Options{
		Cluster:        true,
		Revision:       rev,
		LeaseTTL:       600 * time.Millisecond,
		HeartbeatEvery: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The victim's runner signals the test when it starts a job, then
	// blocks forever: its lease can only be freed by expiry.
	started := make(chan struct{}, 1)
	block := make(chan struct{})
	defer close(block)
	victim := New(Config{
		Coordinator:    ts.URL,
		Name:           "victim",
		Slots:          1,
		Prefetch:       -1, // hold exactly one lease
		Revision:       rev,
		HeartbeatEvery: 150 * time.Millisecond,
		Runner: func(config.RunIdentity, server.RunOptions) (*stats.Run, error) {
			select {
			case started <- struct{}{}:
			default:
			}
			<-block
			return nil, errors.New("victim never finishes")
		},
	})
	victimDone := make(chan error, 1)
	go func() { victimDone <- victim.Run(ctx) }()

	// The campaign fans out through the coordinator exactly as
	// comabench -remote does.
	cli := client.New(ts.URL)
	p := campaignParams()
	p.Remote = func(id config.RunIdentity) (*stats.Run, error) {
		run, _, err := cli.Run(context.Background(), server.SpecForIdentity(id))
		return run, err
	}
	type rendered struct {
		table string
		err   error
	}
	campaign := make(chan rendered, 1)
	go func() {
		tb, err := experiments.NewSuite(p).Fig3()
		if err != nil {
			campaign <- rendered{err: err}
			return
		}
		campaign <- rendered{table: tb.String()}
	}()

	select {
	case <-started:
	case <-time.After(60 * time.Second):
		t.Fatal("victim never started a job")
	}
	// Wait until a heartbeat has reported the job running, so the
	// coordinator knows it is not a stealable backlog entry: the only
	// way off the dead victim is lease expiry.
	waitVictimRunning(t, ts.URL)
	victim.Kill()

	// Two healthy replacements (real simulator) absorb the queue and
	// the requeued lease.
	agentDone := make(chan error, 2)
	for _, name := range []string{"healthy-1", "healthy-2"} {
		a := New(Config{
			Coordinator:    ts.URL,
			Name:           name,
			Slots:          1,
			Revision:       rev,
			HeartbeatEvery: 150 * time.Millisecond,
		})
		go func() { agentDone <- a.Run(ctx) }()
	}

	var got rendered
	select {
	case got = <-campaign:
	case <-time.After(5 * time.Minute):
		t.Fatal("campaign did not complete")
	}
	if got.err != nil {
		t.Fatalf("remote campaign: %v", got.err)
	}
	if got.table != serial {
		i := firstDiff(got.table, serial)
		t.Fatalf("cluster table diverges from single-process at byte %d:\n cluster: %q\n serial:  %q",
			i, excerpt(got.table, i), excerpt(serial, i))
	}

	// The fault was real: at least one lease expired and requeued, and
	// the victim is registered dead.
	text := scrapeMetrics(t, ts.URL)
	if v := metricValue(t, text, "coma_cluster_lease_expiries_total"); v < 1 {
		t.Errorf("lease expiries = %v, want >= 1", v)
	}
	if v := metricValue(t, text, "coma_cluster_requeues_total"); v < 1 {
		t.Errorf("requeues = %v, want >= 1", v)
	}
	if v := metricValue(t, text, `coma_cluster_workers{state="dead"}`); v != 1 {
		t.Errorf("dead workers = %v, want 1", v)
	}
	if v := metricValue(t, text, `coma_cluster_workers{state="active"}`); v != 2 {
		t.Errorf("active workers = %v, want 2", v)
	}

	// Healthy agents drain cleanly.
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-agentDone:
			if err != nil {
				t.Errorf("healthy agent: %v", err)
			}
		case <-time.After(30 * time.Second):
			t.Fatal("healthy agent did not drain")
		}
	}
}

// waitVictimRunning polls the coordinator until the victim's lease is
// marked running (heartbeat delivered).
func waitVictimRunning(t *testing.T, base string) {
	t.Helper()
	cli := client.New(base)
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		workers, _, err := cli.Workers(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workers {
			if w.Name == "victim" && w.Running >= 1 {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("victim's job never reported running")
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return string(body)
}

func firstDiff(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func excerpt(s string, at int) string {
	lo, hi := at-40, at+40
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}

// TestAgentRegisterRevisionMismatchAborts: an agent built from the
// wrong code must fail fast, not retry forever.
func TestAgentRegisterRevisionMismatchAborts(t *testing.T) {
	srv, err := server.New(server.Options{Cluster: true, Revision: "good"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	a := New(Config{Coordinator: ts.URL, Name: "stale", Revision: "bad"})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	err = a.Run(ctx)
	if err == nil || !strings.Contains(err.Error(), "refused registration") {
		t.Fatalf("Run = %v, want refused-registration error", err)
	}
	if ctx.Err() != nil {
		t.Fatal("agent retried a revision mismatch until the deadline instead of aborting")
	}
}

// TestAgentGracefulDrainCompletesInflight: cancelling Run lets the
// in-flight job finish and complete before deregistering.
func TestAgentGracefulDrainCompletesInflight(t *testing.T) {
	srv, err := server.New(server.Options{Cluster: true, LeaseTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	a := New(Config{
		Coordinator:    ts.URL,
		Name:           "drainer",
		HeartbeatEvery: 100 * time.Millisecond,
		Runner: func(id config.RunIdentity, _ server.RunOptions) (*stats.Run, error) {
			entered <- struct{}{}
			<-release
			return &stats.Run{Cycles: 99, Protocol: id.Protocol, Nodes: id.Arch.Nodes}, nil
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Run(ctx) }()

	cli := client.New(ts.URL)
	sub, err := cli.Submit(context.Background(), server.JobSpec{App: "mp3d", Nodes: 2, Protocol: "ecp", Seed: 5}, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-entered:
	case <-time.After(20 * time.Second):
		t.Fatal("agent never started the job")
	}

	cancel() // drain begins while the job is mid-run
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("agent did not drain")
	}

	st, err := cli.Status(context.Background(), sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != server.StateDone {
		t.Fatalf("after drain: job %s, want done (in-flight work must complete, not abandon)", st.State)
	}
	var run stats.Run
	if err := json.Unmarshal(st.Result, &run); err != nil || run.Cycles != 99 {
		t.Fatalf("result = %s / %v, want the drained worker's run", st.Result, err)
	}
}

package coma

import (
	"errors"
	"testing"
)

func quickCfg() Config {
	return Config{
		Nodes:        9,
		Protocol:     ECP,
		App:          Water(),
		Scale:        0.0005,
		CheckpointHz: 400,
		Seed:         1,
		Oracle:       true,
	}
}

func TestRunECP(t *testing.T) {
	res, err := Run(quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Protocol != "ecp" {
		t.Fatalf("result = %+v", res)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := quickCfg()
	cfg.Nodes = 0
	if _, err := Run(cfg); err == nil {
		t.Fatal("zero nodes accepted")
	}
	cfg = quickCfg()
	cfg.Protocol = Standard
	if _, err := Run(cfg); err == nil {
		t.Fatal("standard protocol with checkpointing accepted")
	}
}

func TestCompareDecomposes(t *testing.T) {
	cfg := quickCfg()
	cfg.Scale = 0.002
	cfg.CheckpointInterval = 40_000
	std, ecp, over, err := Compare(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if std.Protocol != "standard" || ecp.Protocol != "ecp" {
		t.Fatalf("protocols = %s / %s", std.Protocol, ecp.Protocol)
	}
	if over.TStandard != std.Cycles || over.TTotal != ecp.Cycles {
		t.Fatal("decomposition does not match the runs")
	}
	if over.TTotal <= over.TStandard {
		t.Fatal("ECP not slower than standard")
	}
	if sum := over.TStandard + over.TCreate + over.TCommit + over.TPollution; sum != over.TTotal {
		t.Fatalf("decomposition does not add up: %d != %d", sum, over.TTotal)
	}
}

func TestFailureRoundTrip(t *testing.T) {
	cfg := quickCfg()
	cfg.Nodes = 16
	cfg.Scale = 0.002
	cfg.CheckpointInterval = 30_000
	cfg.Invariants = true
	// Probe the run length, then fail a node mid-run.
	probe, err := Run(Config{Nodes: 16, Protocol: Standard, App: cfg.App,
		Scale: cfg.Scale, Seed: 1, Oracle: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Failures = []Failure{{At: probe.Cycles / 2, Node: 4, Permanent: true}}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ckpt.Recoveries != 1 {
		t.Fatalf("recoveries = %d", res.Ckpt.Recoveries)
	}
}

func TestAppPresets(t *testing.T) {
	if len(SplashApps()) != 4 {
		t.Fatal("missing SPLASH presets")
	}
	for _, name := range []string{"barnes", "cholesky", "mp3d", "water", "uniform", "private", "migratory"} {
		if _, ok := AppByName(name); !ok {
			t.Errorf("preset %q missing", name)
		}
	}
	if _, ok := AppByName("unknown"); ok {
		t.Error("unknown preset resolved")
	}
}

func TestFaultPlanBuilders(t *testing.T) {
	p := ExponentialFailures(1, 16, 100_000, 1_000_000, 0)
	if err := p.Validate(16); err != nil {
		t.Fatal(err)
	}
	if len(SingleFailure(10, 3, false)) != 1 {
		t.Fatal("single failure plan")
	}
}

func TestAblationOptionsRun(t *testing.T) {
	cfg := quickCfg()
	cfg.NoReplicationReuse = true
	cfg.NoSharedCKReads = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestModernArchRuns(t *testing.T) {
	cfg := quickCfg()
	cfg.Modern = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ClockHz != 100_000_000 {
		t.Fatalf("clock = %d", res.ClockHz)
	}
}

func TestDataLossSurfacesTypedError(t *testing.T) {
	// Killing two adjacent nodes simultaneously eventually destroys a
	// recovery pair; the typed error must be preserved through the
	// public API.
	var lossErr error
	for pair := 0; pair < 8 && lossErr == nil; pair++ {
		cfg := quickCfg()
		cfg.App = MigratoryKernel()
		cfg.Scale = 0.005
		cfg.CheckpointInterval = 30_000
		cfg.Failures = []Failure{
			{At: 120_000, Node: pair},
			{At: 120_000, Node: pair + 1},
		}
		if _, err := Run(cfg); err != nil {
			lossErr = err
		}
	}
	if lossErr == nil {
		t.Skip("no pair hit a recovery pair")
	}
	if !errors.Is(lossErr, ErrDataLoss) {
		t.Fatalf("err = %v", lossErr)
	}
}

// Scalability: grow the machine from 9 to 56 processors at a fixed
// recovery-point frequency and confirm the paper's claim that the ECP
// preserves the architecture's scalability — the create-phase cost stays
// flat or falls, while the aggregate recovery-data throughput grows with
// the machine.
package main

import (
	"fmt"
	"log"
	"os"

	"coma"
	"coma/internal/report"
	"coma/internal/stats"
)

func main() {
	app := coma.Mp3d()
	t := &report.Table{
		ID:    "scalability",
		Title: fmt.Sprintf("%s: ECP scalability, 400 recovery points/s", app.Name),
		Note:  "fixed-size application, growing machine (paper Figs. 8-10)",
		Columns: []string{"procs", "mesh", "T_create", "T_pollution",
			"aggregate replication", "per-node"},
	}
	for _, nodes := range []int{9, 16, 30, 42, 56} {
		cfg := coma.Config{
			Nodes:  nodes,
			App:    app,
			Scale:  0.1,
			Seed:   5,
			Oracle: true,
		}
		stdCfg := cfg
		stdCfg.Protocol = coma.Standard
		std, err := coma.Run(stdCfg)
		if err != nil {
			log.Fatal(err)
		}
		ecpCfg := cfg
		ecpCfg.Protocol = coma.ECP
		ecpCfg.CheckpointHz = 400
		ecp, err := coma.Run(ecpCfg)
		if err != nil {
			log.Fatal(err)
		}
		o := stats.Decompose(std, ecp)
		arch := coma.KSR1Arch(nodes)
		w, h := arch.MeshDims()
		t.AddRow(nodes,
			fmt.Sprintf("%dx%d", w, h),
			report.FormatPct(o.CreateFraction()),
			report.FormatPct(o.PollutionFraction()),
			report.FormatRate(ecp.ReplicationThroughput()),
			report.FormatRate(ecp.PerNodeReplicationThroughput()))
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// Failover: inject a transient and then a permanent node failure into a
// running ECP machine and watch backward error recovery do its job — the
// machine rolls back to the last recovery point, reconfigures the
// surviving recovery copies, and keeps computing. The value oracle and
// the invariant checker prove no data was lost or corrupted.
package main

import (
	"fmt"
	"log"

	"coma"
	"coma/internal/proto"
)

func main() {
	app := coma.Water()
	base := coma.Config{
		Nodes:        16,
		Protocol:     coma.ECP,
		App:          app,
		Scale:        0.03,
		CheckpointHz: 400,
		Seed:         7,
		Oracle:       true,
		Invariants:   true, // full recovery-data invariants at every commit/rollback
	}

	// Probe the failure-free run length so the failures land mid-run.
	probe := base
	probe.Protocol = coma.Standard
	probe.CheckpointHz = 0
	probe.Invariants = false
	free, err := coma.Run(probe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-free run: %d cycles\n\n", free.Cycles)

	base.Failures = []coma.Failure{
		{At: 2 * free.Cycles / 5, Node: 5},                   // transient: node reboots, memory lost
		{At: 3 * free.Cycles / 4, Node: 11, Permanent: true}, // permanent: node leaves the machine
	}
	fmt.Printf("injecting: transient failure of node 5 at cycle %d\n", base.Failures[0].At)
	fmt.Printf("           permanent failure of node 11 at cycle %d\n\n", base.Failures[1].At)

	res, err := coma.Run(base)
	if err != nil {
		log.Fatal(err)
	}

	total := res.Total()
	fmt.Printf("survived: %d cycles total (%.0f%% longer than failure-free)\n",
		res.Cycles, 100*float64(res.Cycles-free.Cycles)/float64(free.Cycles))
	fmt.Printf("  recovery points established: %d\n", res.Ckpt.Established)
	fmt.Printf("  rollbacks:                   %d (one per failure)\n", res.Ckpt.Recoveries)
	fmt.Printf("  reconfiguration injections:  %d (re-pairing recovery copies\n",
		total.Injections[proto.InjectReconfigure])
	fmt.Println("                               whose partner died)")
	fmt.Println()
	fmt.Println("every value read by every processor matched the sequentially")
	fmt.Println("consistent oracle, through both rollbacks — the computation")
	fmt.Println("lost work back to the last recovery point, never correctness.")
}

// Quickstart: run one application under both coherence protocols and
// print the paper's Fig. 3 style overhead decomposition — what fault
// tolerance costs on a COMA.
package main

import (
	"fmt"
	"log"

	"coma"
)

func main() {
	cfg := coma.Config{
		Nodes:        16,          // a 4x4 mesh, as in the paper
		App:          coma.Mp3d(), // the paper's stress case
		Scale:        0.05,        // 5% of the full instruction budget
		CheckpointHz: 100,         // 100 recovery points per second
		Seed:         42,
		Oracle:       true, // verify every value end to end
	}

	std, ecp, over, err := coma.Compare(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("mp3d on %d nodes, %d recovery points established\n",
		cfg.Nodes, ecp.Ckpt.Established)
	fmt.Printf("  standard protocol: %9d cycles\n", std.Cycles)
	fmt.Printf("  ECP:               %9d cycles\n", ecp.Cycles)
	fmt.Printf("  T_create:          %8.1f%%  (creating recovery copies)\n", 100*over.CreateFraction())
	fmt.Printf("  T_commit:          %8.1f%%  (committing the recovery point)\n", 100*over.CommitFraction())
	fmt.Printf("  T_pollution:       %8.1f%%  (recovery data disturbing the AMs)\n", 100*over.PollutionFraction())
	fmt.Printf("  total overhead:    %8.1f%%\n", 100*over.OverheadFraction())

	total := ecp.Total()
	fmt.Printf("\nrecovery data: %d items replicated, %d reused existing copies (%.0f%% free)\n",
		total.CkptItemsReplicated, total.CkptItemsReused,
		100*float64(total.CkptItemsReused)/float64(total.CkptItemsReplicated+total.CkptItemsReused))
	fmt.Printf("per-node replication throughput: %.1f MB/s\n",
		ecp.PerNodeReplicationThroughput()/1e6)
}

// Snoopbus: the paper's conclusion notes that the Extended Coherence
// Protocol "can also be implemented with snooping coherence protocols".
// This example runs the bus-based snooping ECP next to the mesh-based
// directory ECP while the machine grows, showing both that the protocol
// carries over (recovery points, rollback, reconfiguration all work) and
// why the paper prefers non-hierarchical COMAs: the single bus saturates
// as processors are added, while the mesh keeps scaling.
package main

import (
	"fmt"
	"log"
	"os"

	"coma"
	"coma/internal/config"
	"coma/internal/report"
	"coma/internal/snoop"
)

func main() {
	app := coma.Cholesky()
	t := &report.Table{
		ID:    "snoopbus",
		Title: "Snooping-bus ECP vs directory-mesh ECP",
		Note:  "same workload and frequency; execution time in cycles, bus utilisation in %",
		Columns: []string{"procs", "mesh ECP", "bus ECP", "bus/mesh",
			"bus utilisation"},
	}
	for _, nodes := range []int{4, 9, 16} {
		meshRes, err := coma.Run(coma.Config{
			Nodes:        nodes,
			Protocol:     coma.ECP,
			App:          app,
			Scale:        0.01,
			Seed:         9,
			CheckpointHz: 400,
			Oracle:       true,
		})
		if err != nil {
			log.Fatal(err)
		}

		busMachine, err := snoop.New(snoop.Config{
			Arch:               config.KSR1(nodes),
			FaultTolerant:      true,
			App:                app.Scale(0.01),
			Seed:               9,
			CheckpointInterval: config.KSR1(nodes).CheckpointIntervalCycles(400),
			Oracle:             true,
			MaxCycles:          1 << 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		busRes, err := busMachine.Run()
		if err != nil {
			log.Fatal(err)
		}

		t.AddRow(nodes,
			fmt.Sprintf("%d", meshRes.Cycles),
			fmt.Sprintf("%d", busRes.Cycles),
			fmt.Sprintf("%.2fx", float64(busRes.Cycles)/float64(meshRes.Cycles)),
			report.FormatPct(busMachine.BusUtilisation()))
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("the bus variant validates the paper's closing claim; its")
	fmt.Println("utilisation climbing toward saturation is the reason the")
	fmt.Println("paper builds on a non-hierarchical, mesh-based COMA.")
}

// DSVM: the paper closes by noting the approach "can be used to
// implement a recoverable distributed shared virtual memory on top of a
// multicomputer or a network of workstations" — which the authors did, on
// the Intel Paragon and under Chorus. This example runs the very same
// protocol engine with software-DSM parameters: the coherence unit is a
// 4 KB virtual page, latencies are software-stack sized, and recovery
// points, rollback and reconfiguration work unchanged.
package main

import (
	"fmt"
	"log"

	"coma"
	"coma/internal/coherence"
	"coma/internal/machine"
	"coma/internal/workload"
)

func main() {
	app := workload.Spec{
		Name:            "dsvm-app",
		Instructions:    4_000_000,
		ReadFrac:        0.20,
		WriteFrac:       0.08,
		SharedReadFrac:  0.05,
		SharedWriteFrac: 0.02,
		SharedBytes:     2 << 20,
		PrivateBytes:    256 << 10,
		ReadOnlyFrac:    0.5,
		Locality:        0.6,
		// Page-granularity sharing wants page-granularity locality:
		// coarse windows keep false sharing (the DSVM curse) sane.
		HotBytes:    16 << 10,
		WindowBytes: 32 << 10,
		DriftInstr:  20_000,
		Barriers:    4,
	}

	run := func(protocol coherence.Protocol, hz float64, failures []machine.FailurePlan) *coma.Result {
		arch := coma.DSVMArch(8)
		m, err := machine.New(machine.Config{
			Arch:         arch,
			Protocol:     protocol,
			App:          app,
			Seed:         13,
			CheckpointHz: hz,
			Failures:     failures,
			Oracle:       true,
			MaxCycles:    1 << 40,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := m.Run()
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	std := run(coherence.Standard, 0, nil)
	ecp := run(coherence.ECP, 5, nil)
	over := coma.Decompose(std, ecp)
	fmt.Println("recoverable DSVM on 8 workstations (4 KB pages, software latencies)")
	fmt.Printf("  plain DSVM:        %d cycles (%.0f ms)\n", std.Cycles, 1e3*std.Seconds(std.Cycles))
	fmt.Printf("  recoverable DSVM:  %d cycles, %d recovery points\n", ecp.Cycles, ecp.Ckpt.Established)
	fmt.Printf("  overhead:          %.1f%% (create %.1f%%, commit %.1f%%, pollution %.1f%%)\n",
		100*over.OverheadFraction(), 100*over.CreateFraction(),
		100*over.CommitFraction(), 100*over.PollutionFraction())

	// And it recovers: lose a workstation mid-run.
	fr := run(coherence.ECP, 5, []machine.FailurePlan{{At: std.Cycles / 2, Node: 3}})
	fmt.Printf("\nwith workstation 3 crashing mid-run: %d rollback(s), finished in %d cycles,\n",
		fr.Ckpt.Recoveries, fr.Cycles)
	fmt.Println("every page read verified against the oracle through the rollback.")
}

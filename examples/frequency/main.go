// Frequency: sweep the recovery-point establishment frequency for one
// application and print the paper's Fig. 3 trade-off — frequent recovery
// points bound the work lost to a failure but cost more time, because
// more distinct items are modified (and must be replicated) per interval
// at high frequency, while at low frequency repeated writes to the same
// item coalesce into one replication.
package main

import (
	"fmt"
	"log"
	"os"

	"coma"
	"coma/internal/report"
	"coma/internal/stats"
)

func main() {
	app := coma.Cholesky()
	cfg := coma.Config{
		Nodes:  16,
		App:    app,
		Scale:  0.15,
		Seed:   3,
		Oracle: true,
	}

	std, err := coma.Run(withProtocol(cfg, coma.Standard, 0))
	if err != nil {
		log.Fatal(err)
	}

	t := &report.Table{
		ID:    "frequency-sweep",
		Title: fmt.Sprintf("%s: fault-tolerance cost vs recovery-point frequency", app.Name),
		Note:  fmt.Sprintf("%d nodes, standard-protocol baseline %d cycles", cfg.Nodes, std.Cycles),
		Columns: []string{"rp/s", "work at risk", "T_create", "T_commit",
			"T_pollution", "total overhead", "replicated/point"},
	}
	for _, hz := range []float64{50, 100, 200, 400} {
		ecp, err := coma.Run(withProtocol(cfg, coma.ECP, hz))
		if err != nil {
			log.Fatal(err)
		}
		o := stats.Decompose(std, ecp)
		total := ecp.Total()
		perPoint := int64(0)
		if ecp.Ckpt.Established > 0 {
			perPoint = (total.CkptItemsReplicated + total.CkptItemsReused) / ecp.Ckpt.Established
		}
		t.AddRow(hz,
			fmt.Sprintf("%.1f ms", 1e3/hz),
			report.FormatPct(o.CreateFraction()),
			report.FormatPct(o.CommitFraction()),
			report.FormatPct(o.PollutionFraction()),
			report.FormatPct(o.OverheadFraction()),
			fmt.Sprintf("%d items", perPoint))
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func withProtocol(cfg coma.Config, p coma.Protocol, hz float64) coma.Config {
	cfg.Protocol = p
	cfg.CheckpointHz = hz
	return cfg
}

# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets; keep the two in sync.

GO ?= go

.PHONY: all build test race vet lint comalint staticcheck bench bench-json bench-compare smoke-serve smoke-inspect smoke-cluster attest model check

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# comalint: the in-tree protocol/determinism analyzers (see README.md
# §Static analysis & CI).
comalint:
	$(GO) run ./cmd/comalint ./...

# staticcheck is optional locally (the offline dev image does not ship
# it); CI installs and runs it unconditionally.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

lint: vet comalint staticcheck

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ ./...

# bench-json runs the small Bench campaign and writes the
# machine-readable perf record (per-table wall time, runs, simulated
# cycles, kernel events, events/sec). CI uploads it as an artifact; the
# committed BENCH_*.json files track the record across changes.
bench-json:
	$(GO) run ./cmd/comabench -params bench -json BENCH_results.json >/dev/null
	@cat BENCH_results.json

# bench-compare reruns the quick campaign and diffs its perf record
# against the committed baseline: per-table wall time and total
# events/sec deltas, exiting non-zero on a >10% events/sec regression.
# CI runs the same comparison report-only (threshold -1).
BENCH_BASELINE ?= BENCH_2026-08-08.json
bench-compare:
	$(GO) run ./cmd/comabench -params quick -json /tmp/bench-compare.json >/dev/null
	$(GO) run ./cmd/comabench -compare $(BENCH_BASELINE) /tmp/bench-compare.json

# smoke-serve boots a comad daemon, submits the same tiny job twice,
# and asserts the serving contract: cache hit, byte-identical result
# payloads, metrics, graceful drain on SIGTERM (see README §Serving).
smoke-serve:
	bash scripts/smoke-serve.sh

# smoke-inspect exercises the live-inspection layer end to end: REPL
# trace byte-identity, the four comad inspect views mid-run, the SSE
# sample stream, per-job gauges, and inspected-vs-uninspected result
# identity (see README §Live inspection).
smoke-inspect:
	bash scripts/smoke-inspect.sh

# smoke-cluster boots a comad coordinator plus comanode workers, kills
# one mid-campaign, and asserts the fault-tolerance contract: lease
# expiry + requeue in /metrics, campaign tables byte-identical to a
# single-process run, graceful drain (see README §Cluster).
smoke-cluster:
	bash scripts/smoke-cluster.sh

# attest exercises the verifiable-receipt contract: same-seed comasim
# runs emit byte-identical receipts, `comatrace attest` verifies them
# against the result and trace artifacts, single-byte tampering fails
# naming the divergent field, and a comad daemon with a receipt key
# serves signed receipts that attest offline (see README §Execution
# receipts).
attest:
	bash scripts/smoke-attest.sh

# model runs the protocol-conformance gate: static extraction over both
# engines, exhaustive model checking, the staged runtime edge suite, and
# the four-way diff (spec vs code vs model vs runtime coverage). Exit is
# non-zero on any drift or on incomplete edge coverage (see README
# §Model checking).
model:
	$(GO) run ./cmd/comafault -edges -trace-dir /tmp/coma-edges
	$(GO) run ./cmd/comamodel diff -C . -require-full-coverage /tmp/coma-edges/*.jsonl

# check is the full tier-1 gate: everything CI enforces that can run
# offline.
check: build vet test race comalint
